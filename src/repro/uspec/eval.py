"""Grounding and evaluation of µspec axioms for a concrete litmus test.

Given a µspec model and a compiled litmus test, the evaluator
instantiates quantifiers over the test's microops and evaluates data
predicates, producing a *ground formula* whose leaves are µhb edge/node
atoms plus (in RTL mode) symbolic load-value constraints.

Two modes implement the paper's §3.2 distinction:

* ``mode="check"`` — the Check suite's omniscient evaluation: data
  predicates (``SameData``, ``DataFromInitialStateAtPA``, ...) are
  evaluated against the litmus test's *specified outcome*, pruning all
  logical branches that do not lead to that outcome.
* ``mode="rtl"`` — RTLCheck's outcome-aware evaluation: predicates over
  load values stay *symbolic* (:class:`LoadValue` atoms), so a single
  axiom translation covers every outcome the RTL verifier may explore;
  ``DataFromFinalStateAtPA`` is conservatively evaluated to False
  (paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import UspecError
from repro.litmus.test import CompiledTest
from repro.uspec import ast
from repro.uspec.ast import Formula, Truth, conjunction, disjunction

# ---------------------------------------------------------------------------
# Microop instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Micro:
    """A microop instance the evaluator quantifies over."""

    uid: int
    core: int
    index: int  # program-order position on its core
    kind: str  # 'R', 'W', 'F'
    addr: Optional[str]
    value: Optional[int]  # store data
    out: Optional[str]  # load output register

    @property
    def is_load(self) -> bool:
        return self.kind == "R"

    @property
    def is_store(self) -> bool:
        return self.kind == "W"

    def __str__(self):
        return f"i{self.uid}"


def micros_from_compiled(compiled: CompiledTest) -> List[Micro]:
    """The litmus microops of a compiled test (halts excluded: no axiom
    constrains them and they carry no memory semantics)."""
    return [
        Micro(
            uid=op.uid,
            core=op.core,
            index=op.index,
            kind=op.op.kind,
            addr=op.op.addr,
            value=op.op.value,
            out=op.op.out,
        )
        for op in compiled.ops
    ]


# ---------------------------------------------------------------------------
# Ground atoms
# ---------------------------------------------------------------------------

#: A ground µhb node: (microop uid, stage name).
GroundNodeId = Tuple[int, str]


@dataclass(frozen=True)
class GroundEdge(ast.Formula):
    """A ground edge atom.  ``kind`` is ``"add"`` (the axiom contributes
    the edge) or ``"exists"`` (the axiom only tests for it)."""

    kind: str
    src: GroundNodeId
    dst: GroundNodeId
    label: str = ""
    colour: str = ""

    def key(self) -> Tuple[GroundNodeId, GroundNodeId]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class GroundNode(ast.Formula):
    node: GroundNodeId


@dataclass(frozen=True)
class LoadValue(ast.Formula):
    """Symbolic constraint: load ``uid`` returns ``value`` (RTL mode)."""

    uid: int
    value: int


# ---------------------------------------------------------------------------
# Evaluation context
# ---------------------------------------------------------------------------


@dataclass
class EvalContext:
    """Everything needed to ground a µspec formula for one test."""

    micros: List[Micro]
    initial_memory: Dict[str, int]
    outcome_registers: Dict[str, int]
    outcome_final: Dict[str, int]
    mode: str = "check"  # 'check' or 'rtl'

    def __post_init__(self):
        if self.mode not in ("check", "rtl"):
            raise UspecError(f"unknown evaluation mode {self.mode!r}")
        self.cores = sorted({m.core for m in self.micros})

    @staticmethod
    def for_compiled(compiled: CompiledTest, mode: str = "check") -> "EvalContext":
        test = compiled.test
        return EvalContext(
            micros=micros_from_compiled(compiled),
            initial_memory=test.initial_memory_map,
            outcome_registers=test.outcome.register_map,
            outcome_final=test.outcome.final_memory_map,
            mode=mode,
        )

    def load_outcome_value(self, micro: Micro) -> int:
        if micro.out not in self.outcome_registers:
            raise UspecError(
                f"load i{micro.uid} ({micro.out}) has no value in the litmus "
                "outcome; omniscient (check-mode) evaluation needs one"
            )
        return self.outcome_registers[micro.out]


Binding = Union[Micro, int]


class _Evaluator:
    def __init__(self, model: ast.Model, context: EvalContext):
        self.model = model
        self.context = context
        self.stage_names = set(model.stages)
        self._macro_depth = 0

    # -- helpers ---------------------------------------------------------

    def _micro(self, bindings: Dict[str, Binding], var: ast.Var) -> Micro:
        value = bindings.get(var.name)
        if not isinstance(value, Micro):
            raise UspecError(f"variable {var.name!r} is not a bound microop")
        return value

    def _core(self, bindings: Dict[str, Binding], var: ast.Var) -> int:
        value = bindings.get(var.name)
        if not isinstance(value, int):
            raise UspecError(f"variable {var.name!r} is not a bound core")
        return value

    def _ground_node(self, bindings, node: ast.NodeRef) -> GroundNodeId:
        if node.stage not in self.stage_names:
            raise UspecError(f"unknown stage {node.stage!r}")
        return (self._micro(bindings, node.microop).uid, node.stage)

    def _ground_edge(self, bindings, edge: ast.EdgeRef, kind: str) -> GroundEdge:
        return GroundEdge(
            kind=kind,
            src=self._ground_node(bindings, edge.src),
            dst=self._ground_node(bindings, edge.dst),
            label=edge.label,
            colour=edge.colour,
        )

    # -- evaluation ------------------------------------------------------

    def eval(self, formula: ast.Formula, bindings: Dict[str, Binding]) -> Formula:
        if isinstance(formula, ast.Truth):
            return formula
        if isinstance(formula, ast.Not):
            inner = self.eval(formula.body, bindings)
            if isinstance(inner, Truth):
                return Truth(not inner.value)
            return ast.Not(inner)
        if isinstance(formula, ast.And):
            # Short-circuit so guard predicates (IsAnyWrite w, ...) can
            # protect data predicates that would otherwise be undefined
            # for this binding (e.g. SameData between two loads).
            parts = []
            for op in formula.operands:
                part = self.eval(op, bindings)
                if isinstance(part, Truth) and not part.value:
                    return Truth(False)
                parts.append(part)
            return conjunction(parts)
        if isinstance(formula, ast.Or):
            parts = []
            for op in formula.operands:
                part = self.eval(op, bindings)
                if isinstance(part, Truth) and part.value:
                    return Truth(True)
                parts.append(part)
            return disjunction(parts)
        if isinstance(formula, ast.Implies):
            premise = self.eval(formula.premise, bindings)
            conclusion = self.eval(formula.conclusion, bindings)
            if isinstance(premise, Truth):
                return conclusion if premise.value else Truth(True)
            return disjunction([ast.Not(premise), conclusion])
        if isinstance(formula, ast.Quantifier):
            return self._eval_quantifier(formula, bindings)
        if isinstance(formula, ast.Predicate):
            return self._eval_predicate(formula, bindings)
        if isinstance(formula, ast.AddEdge):
            return self._ground_edge(bindings, formula.edge, "add")
        if isinstance(formula, ast.AddEdges):
            return conjunction(
                [self._ground_edge(bindings, e, "add") for e in formula.edges]
            )
        if isinstance(formula, ast.EdgeExists):
            return self._ground_edge(bindings, formula.edge, "exists")
        if isinstance(formula, ast.EdgesExist):
            return conjunction(
                [self._ground_edge(bindings, e, "exists") for e in formula.edges]
            )
        if isinstance(formula, ast.NodeExists):
            return GroundNode(self._ground_node(bindings, formula.node))
        if isinstance(formula, ast.ExpandMacro):
            return self._eval_macro(formula, bindings)
        raise UspecError(f"cannot evaluate {formula!r}")

    def _eval_quantifier(self, formula: ast.Quantifier, bindings) -> Formula:
        domain: Sequence[Binding]
        if formula.domain == "microop":
            domain = self.context.micros
        else:
            domain = self.context.cores

        def expand(names: Tuple[str, ...], bound: Dict[str, Binding]) -> List[Formula]:
            if not names:
                return [self.eval(formula.body, bound)]
            results = []
            for item in domain:
                child = dict(bound)
                child[names[0]] = item
                results.extend(expand(names[1:], child))
            return results

        parts = expand(formula.names, dict(bindings))
        if formula.kind == "forall":
            return conjunction(parts)
        return disjunction(parts)

    def _eval_macro(self, formula: ast.ExpandMacro, bindings) -> Formula:
        try:
            macro = self.model.macro(formula.name)
        except KeyError:
            raise UspecError(f"undefined macro {formula.name!r}") from None
        if len(formula.args) != len(macro.params):
            raise UspecError(
                f"macro {formula.name!r} takes {len(macro.params)} args, "
                f"got {len(formula.args)}"
            )
        if self._macro_depth > 32:
            raise UspecError(f"macro recursion too deep at {formula.name!r}")
        child = dict(bindings)  # unbound body variables capture the call site
        for param, arg in zip(macro.params, formula.args):
            if arg.name not in bindings:
                raise UspecError(f"macro argument {arg.name!r} is unbound")
            child[param] = bindings[arg.name]
        self._macro_depth += 1
        try:
            return self.eval(macro.body, child)
        finally:
            self._macro_depth -= 1

    # -- predicates --------------------------------------------------------

    def _eval_predicate(self, formula: ast.Predicate, bindings) -> Formula:
        name, args = formula.name, formula.args
        ctx = self.context

        def micro(i: int) -> Micro:
            return self._micro(bindings, args[i])

        if name in ("IsAnyRead", "IsRead"):
            return Truth(micro(0).is_load)
        if name in ("IsAnyWrite", "IsWrite"):
            return Truth(micro(0).is_store)
        if name == "IsAnyFence":
            return Truth(micro(0).kind == "F")
        if name == "SameMicroop":
            return Truth(micro(0).uid == micro(1).uid)
        if name == "SameCore":
            return Truth(micro(0).core == micro(1).core)
        if name == "OnCore":
            return Truth(self._core(bindings, args[0]) == micro(1).core)
        if name == "SameAddress":
            a, b = micro(0), micro(1)
            return Truth(a.addr is not None and a.addr == b.addr)
        if name == "ProgramOrder":
            a, b = micro(0), micro(1)
            return Truth(a.core == b.core and a.index < b.index)
        if name == "SameData":
            return self._same_data(micro(0), micro(1))
        if name == "DataFromInitialStateAtPA":
            return self._data_from_initial(micro(0))
        if name == "DataFromFinalStateAtPA":
            return self._data_from_final(micro(0))
        raise UspecError(f"unknown predicate {name!r}")

    def _load_value_equals(self, load: Micro, value: int) -> Formula:
        if self.context.mode == "check":
            return Truth(self.context.load_outcome_value(load) == value)
        return LoadValue(load.uid, value)

    def _same_data(self, a: Micro, b: Micro) -> Formula:
        if a.is_store and b.is_store:
            return Truth(a.value == b.value)
        if a.is_store and b.is_load:
            return self._load_value_equals(b, a.value)
        if a.is_load and b.is_store:
            return self._load_value_equals(a, b.value)
        if a.is_load and b.is_load:
            if self.context.mode == "check":
                return Truth(
                    self.context.load_outcome_value(a)
                    == self.context.load_outcome_value(b)
                )
            raise UspecError(
                "SameData between two loads is not synthesizable to SVA"
            )
        return Truth(False)  # fences carry no data

    def _data_from_initial(self, micro: Micro) -> Formula:
        if micro.addr is None:
            return Truth(False)
        initial = self.context.initial_memory.get(micro.addr, 0)
        if micro.is_store:
            return Truth(micro.value == initial)
        return self._load_value_equals(micro, initial)

    def _data_from_final(self, micro: Micro) -> Formula:
        if self.context.mode == "rtl":
            # Paper §4.2: SVA verifiers cannot enforce that a write
            # happens last, so this is conservatively False at RTL.
            return Truth(False)
        if micro.addr is None or not micro.is_store:
            return Truth(False)
        final = self.context.outcome_final.get(micro.addr)
        return Truth(final is not None and micro.value == final)


def evaluate_formula(
    model: ast.Model, formula: ast.Formula, context: EvalContext
) -> Formula:
    """Ground ``formula`` over ``context`` (quantifier-free result whose
    leaves are :class:`GroundEdge` / :class:`GroundNode` /
    :class:`LoadValue` / :class:`~repro.uspec.ast.Truth`)."""
    return _Evaluator(model, context).eval(formula, {})


def evaluate_axiom(model: ast.Model, axiom: ast.Axiom, context: EvalContext) -> Formula:
    """Ground one axiom (see :func:`evaluate_formula`)."""
    return evaluate_formula(model, axiom.body, context)


def evaluate_axioms(model: ast.Model, context: EvalContext) -> Dict[str, Formula]:
    """Ground every axiom of ``model``; axiom name -> ground formula."""
    return {
        axiom.name: evaluate_axiom(model, axiom, context) for axiom in model.axioms
    }
