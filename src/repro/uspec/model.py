"""Bundled µspec models."""

from __future__ import annotations

from pathlib import Path

from repro.uspec.ast import Model
from repro.uspec.parser import parse_uspec

_MODEL_DIR = Path(__file__).resolve().parent / "models"
_CACHE = {}


def model_source(name: str) -> str:
    """The raw µspec source of a bundled model."""
    path = _MODEL_DIR / f"{name}.uspec"
    return path.read_text()


def load_model(name: str) -> Model:
    """Parse and cache a bundled model by name."""
    if name not in _CACHE:
        _CACHE[name] = parse_uspec(model_source(name))
    return _CACHE[name]


def multi_vscale_model() -> Model:
    """The Multi-V-scale microarchitecture model (paper §5.3)."""
    return load_model("multi_vscale")
