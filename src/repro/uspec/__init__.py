"""The µspec microarchitectural modeling language."""

from repro.uspec import ast
from repro.uspec.eval import (
    EvalContext,
    GroundEdge,
    GroundNode,
    LoadValue,
    Micro,
    evaluate_axiom,
    evaluate_axioms,
    evaluate_formula,
    micros_from_compiled,
)
from repro.uspec.lexer import Token, tokenize
from repro.uspec.lint import LintFinding, LintReport, lint_model, lint_source
from repro.uspec.model import load_model, model_source, multi_vscale_model
from repro.uspec.parser import parse_formula, parse_uspec

__all__ = [
    "EvalContext",
    "GroundEdge",
    "GroundNode",
    "LoadValue",
    "Micro",
    "LintFinding",
    "LintReport",
    "lint_model",
    "lint_source",
    "Token",
    "ast",
    "evaluate_axiom",
    "evaluate_axioms",
    "evaluate_formula",
    "load_model",
    "micros_from_compiled",
    "model_source",
    "multi_vscale_model",
    "parse_formula",
    "parse_uspec",
    "tokenize",
]
