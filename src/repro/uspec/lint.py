"""Synthesizability linting for µspec models.

The paper identifies "an approach to writing µspec that is
'synthesizable' to SVA, much as previous work has spent effort to
identify subsets of Verilog that are synthesizable to actual circuits"
and expects future µspec to restrict itself to that subset (§2.2).
This module makes the subset checkable: :func:`lint_model` statically
analyses a model and reports, per axiom, the constructs that would stop
RTLCheck's Assertion Generator from producing SVA.

Checked rules (each yields a :class:`LintFinding`):

``negated-non-edge``
    A negation that cannot be eliminated: after pushing negations
    inward, something other than an edge atom remains negated (negated
    edges are rewritable as the reversed edge; negated data predicates
    or node-existence atoms are not translatable).
``load-load-data``
    ``SameData`` between two loads — symbolic at RTL and outside the
    subset.
``final-state-dependence``
    An axiom whose conclusion can only fire when
    ``DataFromFinalStateAtPA`` holds: conservatively False at RTL
    (§4.2), so the axiom generates no assertions and its orderings go
    unchecked at RTL.  Reported as a warning rather than an error.
``unknown-predicate`` / ``unknown-stage`` / ``undefined-macro`` /
``macro-arity`` / ``macro-recursion``
    Structural problems that would fail at evaluation time.

The linter is purely syntactic/structural: it runs without a litmus
test, so models can be checked as they are written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.uspec import ast

#: Predicates the evaluator implements, with their arities.
KNOWN_PREDICATES = {
    "IsAnyRead": 1,
    "IsRead": 1,
    "IsAnyWrite": 1,
    "IsWrite": 1,
    "IsAnyFence": 1,
    "SameMicroop": 2,
    "SameCore": 2,
    "OnCore": 2,
    "SameAddress": 2,
    "ProgramOrder": 2,
    "SameData": 2,
    "DataFromInitialStateAtPA": 1,
    "DataFromFinalStateAtPA": 1,
}

#: Severity levels.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic."""

    severity: str
    rule: str
    axiom: str
    message: str

    def __str__(self):
        return f"[{self.severity}] {self.axiom}: {self.rule}: {self.message}"


@dataclass
class LintReport:
    """All diagnostics for a model."""

    findings: List[LintFinding]

    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def synthesizable(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if not self.findings:
            return "model is synthesizable to SVA (no findings)"
        return "\n".join(str(f) for f in self.findings)


class _Linter:
    def __init__(self, model: ast.Model):
        self.model = model
        self.findings: List[LintFinding] = []
        self.stages = set(model.stages)
        self.macros = {m.name: m for m in model.macros}

    def add(self, severity: str, rule: str, axiom: str, message: str) -> None:
        self.findings.append(LintFinding(severity, rule, axiom, message))

    # ------------------------------------------------------------------

    def lint(self) -> LintReport:
        for axiom in self.model.axioms:
            self._walk(axiom.body, axiom.name, negated=False, stack=())
        return LintReport(self.findings)

    def _check_node(self, node: ast.NodeRef, axiom: str) -> None:
        if node.stage not in self.stages:
            self.add(
                ERROR, "unknown-stage", axiom,
                f"stage {node.stage!r} is not declared in Stages",
            )

    def _walk(
        self,
        formula: ast.Formula,
        axiom: str,
        negated: bool,
        stack: Tuple[str, ...],
    ) -> None:
        if isinstance(formula, ast.Truth):
            return
        if isinstance(formula, ast.Not):
            self._walk(formula.body, axiom, not negated, stack)
            return
        if isinstance(formula, (ast.And, ast.Or)):
            for op in formula.operands:
                self._walk(op, axiom, negated, stack)
            return
        if isinstance(formula, ast.Implies):
            self._walk(formula.premise, axiom, not negated, stack)
            self._walk(formula.conclusion, axiom, negated, stack)
            return
        if isinstance(formula, ast.Quantifier):
            self._walk(formula.body, axiom, negated, stack)
            return
        if isinstance(formula, (ast.AddEdge, ast.EdgeExists)):
            edge = formula.edge
            self._check_node(edge.src, axiom)
            self._check_node(edge.dst, axiom)
            return  # negated edges are rewritable: fine either way
        if isinstance(formula, (ast.AddEdges, ast.EdgesExist)):
            for edge in formula.edges:
                self._check_node(edge.src, axiom)
                self._check_node(edge.dst, axiom)
            return
        if isinstance(formula, ast.NodeExists):
            self._check_node(formula.node, axiom)
            if negated:
                self.add(
                    ERROR, "negated-non-edge", axiom,
                    "negated NodeExists has no SVA translation",
                )
            return
        if isinstance(formula, ast.Predicate):
            self._lint_predicate(formula, axiom, negated)
            return
        if isinstance(formula, ast.ExpandMacro):
            self._lint_macro(formula, axiom, negated, stack)
            return
        self.add(ERROR, "unknown-construct", axiom, f"cannot lint {formula!r}")

    def _lint_predicate(self, pred: ast.Predicate, axiom: str, negated: bool) -> None:
        arity = KNOWN_PREDICATES.get(pred.name)
        if arity is None:
            self.add(
                ERROR, "unknown-predicate", axiom,
                f"predicate {pred.name!r} is not implemented",
            )
            return
        if len(pred.args) != arity:
            self.add(
                ERROR, "predicate-arity", axiom,
                f"{pred.name} takes {arity} argument(s), got {len(pred.args)}",
            )
        if pred.name == "SameData" and negated:
            self.add(
                ERROR, "negated-non-edge", axiom,
                "a negated SameData may leave a negated load-value "
                "constraint, which has no SVA translation",
            )
        if pred.name == "DataFromInitialStateAtPA" and negated:
            self.add(
                ERROR, "negated-non-edge", axiom,
                "negated DataFromInitialStateAtPA may leave a negated "
                "load-value constraint at RTL",
            )
        if pred.name == "DataFromFinalStateAtPA":
            self.add(
                WARNING, "final-state-dependence", axiom,
                "DataFromFinalStateAtPA is conservatively False at RTL "
                "(paper §4.2); orderings guarded by it are unchecked "
                "in the generated SVA",
            )

    def _lint_macro(
        self,
        call: ast.ExpandMacro,
        axiom: str,
        negated: bool,
        stack: Tuple[str, ...],
    ) -> None:
        macro = self.macros.get(call.name)
        if macro is None:
            self.add(
                ERROR, "undefined-macro", axiom,
                f"macro {call.name!r} is not defined",
            )
            return
        if len(call.args) != len(macro.params):
            self.add(
                ERROR, "macro-arity", axiom,
                f"macro {call.name} takes {len(macro.params)} argument(s), "
                f"got {len(call.args)}",
            )
        if call.name in stack:
            self.add(
                ERROR, "macro-recursion", axiom,
                f"macro {call.name!r} expands itself (cycle: "
                f"{' -> '.join(stack + (call.name,))})",
            )
            return
        self._walk(macro.body, axiom, negated, stack + (call.name,))


def lint_model(model: ast.Model) -> LintReport:
    """Statically check ``model`` against the SVA-synthesizable subset."""
    return _Linter(model).lint()


def lint_source(source: str) -> LintReport:
    """Parse and lint µspec ``source``."""
    from repro.uspec.parser import parse_uspec

    return lint_model(parse_uspec(source))
