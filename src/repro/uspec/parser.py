"""Recursive-descent parser for µspec.

Grammar (faithful to the fragments in paper Figures 3b / 5)::

    model      := (stages | macro | axiom)*
    stages     := 'Stages' string (',' string)* '.'
    macro      := 'DefineMacro' string string* ':' formula '.'
    axiom      := 'Axiom' string ':' formula '.'
    formula    := quantified | implication
    quantified := ('forall'|'exists') domain string (',' string)* ',' formula
    domain     := 'microop' | 'microops' | 'core' | 'cores'
    implication:= disjunct ('=>' formula)?
    disjunct   := conjunct ('\\/' conjunct)*
    conjunct   := unary ('/\\' unary)*
    unary      := '~' unary | primary
    primary    := '(' formula ')' | edge/node atoms | ExpandMacro | predicate
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import UspecSyntaxError
from repro.uspec.ast import (
    AddEdge,
    AddEdges,
    And,
    Axiom,
    EdgeExists,
    EdgeRef,
    EdgesExist,
    ExpandMacro,
    Formula,
    Implies,
    Macro,
    Model,
    NodeExists,
    NodeRef,
    Not,
    Or,
    Predicate,
    Quantifier,
    Truth,
    Var,
)
from repro.uspec.lexer import Token, tokenize

_DOMAINS = {
    "microop": "microop",
    "microops": "microop",
    "core": "core",
    "cores": "core",
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Token = None) -> UspecSyntaxError:
        token = token or self.peek()
        return UspecSyntaxError(message, token.line, token.column)

    def expect_symbol(self, symbol: str) -> Token:
        token = self.next()
        if token.kind != "symbol" or token.text != symbol:
            raise self.error(f"expected {symbol!r}, got {token.text!r}", token)
        return token

    def expect_ident(self, text: str = None) -> Token:
        token = self.next()
        if token.kind != "ident" or (text is not None and token.text != text):
            raise self.error(f"expected identifier {text or ''}, got {token.text!r}", token)
        return token

    def expect_string(self) -> str:
        token = self.next()
        if token.kind != "string":
            raise self.error(f"expected string literal, got {token.text!r}", token)
        return token.text

    def at_symbol(self, symbol: str) -> bool:
        token = self.peek()
        return token.kind == "symbol" and token.text == symbol

    def at_ident(self, text: str = None) -> bool:
        token = self.peek()
        return token.kind == "ident" and (text is None or token.text == text)

    # -- model ---------------------------------------------------------

    def parse_model(self) -> Model:
        model = Model()
        while not self.peek().kind == "eof":
            if self.at_ident("Stages"):
                self.next()
                model.stages = [self.expect_string()]
                while self.at_symbol(","):
                    self.next()
                    model.stages.append(self.expect_string())
                self.expect_symbol(".")
            elif self.at_ident("DefineMacro"):
                self.next()
                name = self.expect_string()
                params = []
                while self.peek().kind == "string":
                    params.append(self.expect_string())
                self.expect_symbol(":")
                body = self.parse_formula()
                self.expect_symbol(".")
                model.macros.append(Macro(name, tuple(params), body))
            elif self.at_ident("Axiom"):
                self.next()
                name = self.expect_string()
                self.expect_symbol(":")
                body = self.parse_formula()
                self.expect_symbol(".")
                model.axioms.append(Axiom(name, body))
            else:
                raise self.error(
                    f"expected Stages/DefineMacro/Axiom, got {self.peek().text!r}"
                )
        return model

    # -- formulas --------------------------------------------------------

    def parse_formula(self) -> Formula:
        token = self.peek()
        if token.kind == "ident" and token.text in ("forall", "exists"):
            return self.parse_quantifier()
        return self.parse_implication()

    def parse_quantifier(self) -> Formula:
        kind = self.next().text
        domain_token = self.next()
        domain = _DOMAINS.get(domain_token.text)
        if domain_token.kind != "ident" or domain is None:
            raise self.error("expected 'microop(s)' or 'core(s)'", domain_token)
        names = [self.expect_string()]
        self.expect_symbol(",")
        while self.peek().kind == "string":
            names.append(self.expect_string())
            self.expect_symbol(",")
        body = self.parse_formula()
        return Quantifier(kind, domain, tuple(names), body)

    def parse_implication(self) -> Formula:
        left = self.parse_disjunction()
        if self.at_symbol("=>"):
            self.next()
            return Implies(left, self.parse_formula())
        return left

    def parse_disjunction(self) -> Formula:
        operands = [self.parse_conjunction()]
        while self.at_symbol("\\/"):
            self.next()
            operands.append(self.parse_conjunction())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def parse_conjunction(self) -> Formula:
        operands = [self.parse_unary()]
        while self.at_symbol("/\\"):
            self.next()
            operands.append(self.parse_unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def parse_unary(self) -> Formula:
        if self.at_symbol("~"):
            self.next()
            return Not(self.parse_unary())
        if self.at_ident("forall") or self.at_ident("exists"):
            # A quantifier nested inside a connective; its body extends
            # as far right as possible (parenthesize to scope it).
            return self.parse_quantifier()
        return self.parse_primary()

    def parse_primary(self) -> Formula:
        if self.at_symbol("("):
            self.next()
            inner = self.parse_formula()
            self.expect_symbol(")")
            return inner
        token = self.peek()
        if token.kind != "ident":
            raise self.error(f"expected formula, got {token.text!r}", token)
        name = self.next().text
        if name == "True":
            return Truth(True)
        if name == "False":
            return Truth(False)
        if name == "AddEdge":
            return AddEdge(self.parse_edge())
        if name == "EdgeExists":
            return EdgeExists(self.parse_edge())
        if name == "AddEdges":
            return AddEdges(self.parse_edge_list())
        if name == "EdgesExist":
            return EdgesExist(self.parse_edge_list())
        if name == "NodeExists":
            return NodeExists(self.parse_node())
        if name == "ExpandMacro":
            macro_name = self.expect_ident().text
            args = []
            while self.peek().kind == "ident" and not self._ident_is_keyword():
                args.append(Var(self.next().text))
            return ExpandMacro(macro_name, tuple(args))
        # Otherwise: a predicate with variable arguments.
        args = []
        while self.peek().kind == "ident" and not self._ident_is_keyword():
            args.append(Var(self.next().text))
        if not args:
            raise self.error(f"predicate {name} needs arguments")
        return Predicate(name, tuple(args))

    def _ident_is_keyword(self) -> bool:
        return self.peek().text in ("forall", "exists")

    # -- terms -----------------------------------------------------------

    def parse_node(self) -> NodeRef:
        self.expect_symbol("(")
        microop = Var(self.expect_ident().text)
        self.expect_symbol(",")
        stage = self.expect_ident().text
        self.expect_symbol(")")
        return NodeRef(microop, stage)

    def parse_edge(self) -> EdgeRef:
        self.expect_symbol("(")
        src = self.parse_node()
        self.expect_symbol(",")
        dst = self.parse_node()
        label = colour = ""
        if self.at_symbol(","):
            self.next()
            label = self.expect_string()
            if self.at_symbol(","):
                self.next()
                colour = self.expect_string()
        self.expect_symbol(")")
        return EdgeRef(src, dst, label, colour)

    def parse_edge_list(self) -> Tuple[EdgeRef, ...]:
        self.expect_symbol("[")
        edges = [self.parse_edge()]
        while self.at_symbol(";"):
            self.next()
            edges.append(self.parse_edge())
        self.expect_symbol("]")
        return tuple(edges)


def parse_uspec(source: str) -> Model:
    """Parse µspec ``source`` into a :class:`~repro.uspec.ast.Model`."""
    return _Parser(tokenize(source)).parse_model()


def parse_formula(source: str) -> Formula:
    """Parse a single formula (handy in tests)."""
    parser = _Parser(tokenize(source))
    formula = parser.parse_formula()
    if parser.peek().kind != "eof":
        raise parser.error("trailing input after formula")
    return formula
