"""Microarchitectural happens-before (µhb) graphs.

Nodes are (microop uid, stage name) pairs — "instruction i4 at its
Writeback stage" — and directed edges are known happens-before
relationships (paper §2.1, Figure 3a).  A cycle proves the depicted
scenario impossible, since an event cannot happen before itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

GraphNode = Tuple[int, str]
GraphEdge = Tuple[GraphNode, GraphNode]


class UhbGraph:
    """A mutable µhb graph with incremental cycle detection."""

    def __init__(self):
        self._edges: Dict[GraphEdge, Tuple[str, str]] = {}
        self._succ: Dict[GraphNode, Set[GraphNode]] = {}

    # ------------------------------------------------------------------

    @property
    def edges(self) -> Dict[GraphEdge, Tuple[str, str]]:
        return dict(self._edges)

    def edge_set(self) -> Set[GraphEdge]:
        return set(self._edges)

    def nodes(self) -> Set[GraphNode]:
        found: Set[GraphNode] = set()
        for src, dst in self._edges:
            found.add(src)
            found.add(dst)
        return found

    def has_edge(self, src: GraphNode, dst: GraphNode) -> bool:
        return (src, dst) in self._edges

    def has_path(self, src: GraphNode, dst: GraphNode) -> bool:
        """Is there a directed path from ``src`` to ``dst``?"""
        if src == dst:
            return True
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            for nxt in self._succ.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def would_close_cycle(self, src: GraphNode, dst: GraphNode) -> bool:
        """Would adding ``src -> dst`` create a cycle?"""
        return self.has_path(dst, src)

    def add_edge(
        self, src: GraphNode, dst: GraphNode, label: str = "", colour: str = ""
    ) -> None:
        if (src, dst) not in self._edges:
            self._edges[(src, dst)] = (label, colour)
            self._succ.setdefault(src, set()).add(dst)

    def remove_edge(self, src: GraphNode, dst: GraphNode) -> None:
        if (src, dst) in self._edges:
            del self._edges[(src, dst)]
            self._succ[src].discard(dst)

    def is_acyclic(self) -> bool:
        order = self.topological_order()
        return order is not None

    def topological_order(self) -> Optional[List[GraphNode]]:
        """Kahn's algorithm; None if the graph is cyclic."""
        nodes = self.nodes()
        in_degree = {node: 0 for node in nodes}
        for _src, dst in self._edges:
            in_degree[dst] += 1
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[GraphNode] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in sorted(self._succ.get(node, ())):
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(nodes):
            return None
        return order

    def find_cycle(self) -> Optional[List[GraphNode]]:
        """One cycle as a node list, or None if acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self.nodes()}
        parent: Dict[GraphNode, Optional[GraphNode]] = {}

        def walk(start: GraphNode) -> Optional[List[GraphNode]]:
            stack = [(start, iter(sorted(self._succ.get(start, ()))))]
            colour[start] = GREY
            parent[start] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == GREY:
                        cycle = [nxt, node]
                        cursor = parent[node]
                        while cursor is not None and cycle[0] != node:
                            if cursor == nxt:
                                break
                            cycle.append(cursor)
                            cursor = parent[cursor]
                        cycle.reverse()
                        return cycle
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self._succ.get(nxt, ())))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
            return None

        for node in sorted(colour):
            if colour[node] == WHITE:
                cycle = walk(node)
                if cycle:
                    return cycle
        return None

    # ------------------------------------------------------------------

    def copy(self) -> "UhbGraph":
        dup = UhbGraph()
        for (src, dst), (label, colour) in self._edges.items():
            dup.add_edge(src, dst, label, colour)
        return dup

    def to_dot(self, name: str = "uhb", instr_names: Optional[Dict[int, str]] = None) -> str:
        """Graphviz rendering in the style of paper Figure 3a."""
        instr_names = instr_names or {}

        def node_id(node: GraphNode) -> str:
            uid, stage = node
            return f"i{uid}_{stage}"

        def node_label(node: GraphNode) -> str:
            uid, stage = node
            return f"{instr_names.get(uid, f'i{uid}')}\\n{stage}"

        lines = [f"digraph {name} {{", "  rankdir=TB;"]
        for node in sorted(self.nodes()):
            lines.append(f'  {node_id(node)} [label="{node_label(node)}"];')
        for (src, dst), (label, colour) in sorted(self._edges.items()):
            attrs = []
            if label:
                attrs.append(f'label="{label}"')
            if colour:
                attrs.append(f'color="{colour}"')
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f"  {node_id(src)} -> {node_id(dst)}{suffix};")
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self):
        return f"UhbGraph({len(self._edges)} edges)"
