"""µhb graphs and Check-style microarchitectural verification."""

from repro.uhb.graph import GraphEdge, GraphNode, UhbGraph
from repro.uhb.solver import MAX_GRAPHS, SolveResult, UhbSolver, to_nnf
from repro.uhb.verify import (
    MicroarchResult,
    cyclic_witness_graph,
    ground_axioms,
    instruction_labels,
    microarch_observable,
)

__all__ = [
    "GraphEdge",
    "GraphNode",
    "MAX_GRAPHS",
    "MicroarchResult",
    "SolveResult",
    "UhbGraph",
    "UhbSolver",
    "cyclic_witness_graph",
    "ground_axioms",
    "instruction_labels",
    "microarch_observable",
    "to_nnf",
]
