"""Microarchitectural MCM verification (the Check-suite layer).

This is the verification RTLCheck builds on: for a litmus test and a
µspec model, exhaustively enumerate µhb graphs and decide whether the
test's candidate outcome is observable on the modeled microarchitecture
(paper §2.1).  For an SC machine like Multi-V-scale, a forbidden
outcome must be unobservable: every satisfying graph is cyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.litmus.test import CompiledTest, LitmusTest, compile_test
from repro.uhb.graph import UhbGraph
from repro.uhb.solver import SolveResult, UhbSolver
from repro.uspec.ast import Model
from repro.uspec.eval import EvalContext, evaluate_axioms


@dataclass
class MicroarchResult:
    """Verdict of microarchitectural verification for one test."""

    test: LitmusTest
    observable: bool
    solve: SolveResult

    @property
    def witness(self) -> Optional[UhbGraph]:
        return self.solve.witness

    def summary(self) -> str:
        verdict = "observable" if self.observable else "unobservable"
        return (
            f"{self.test.name}: outcome ({self.test.outcome}) is {verdict} "
            f"at the microarchitecture level "
            f"({self.solve.consistent_graphs} consistent graphs, "
            f"{self.solve.acyclic_graphs} acyclic)"
        )


def ground_axioms(model: Model, compiled: CompiledTest, mode: str = "check") -> Dict:
    """Ground every axiom of ``model`` for ``compiled`` in ``mode``."""
    context = EvalContext.for_compiled(compiled, mode=mode)
    return evaluate_axioms(model, context)


def microarch_observable(
    model: Model,
    test: LitmusTest,
    compiled: Optional[CompiledTest] = None,
    find_all: bool = False,
) -> MicroarchResult:
    """Is the test outcome observable on the modeled microarchitecture?"""
    compiled = compiled or compile_test(test)
    solver = UhbSolver(ground_axioms(model, compiled, mode="check"))
    result = solver.solve(find_all=find_all)
    return MicroarchResult(test=test, observable=result.observable, solve=result)


def cyclic_witness_graph(
    model: Model, test: LitmusTest, compiled: Optional[CompiledTest] = None
) -> Optional[UhbGraph]:
    """A consistent-but-cyclic µhb graph for the outcome (Figure 3a
    style), if one exists."""
    compiled = compiled or compile_test(test)
    solver = UhbSolver(ground_axioms(model, compiled, mode="check"))
    return solver.find_cyclic_witness()


def instruction_labels(compiled: CompiledTest) -> Dict[int, str]:
    """uid -> pretty label ("i1: [x] <- 1") for DOT rendering."""
    return {op.uid: f"i{op.uid}: {op.op}" for op in compiled.ops}
