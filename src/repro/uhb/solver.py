"""Check-style exhaustive enumeration of µhb graphs.

Given the ground axiom formulas for one litmus test (from
:mod:`repro.uspec.eval` in ``check`` mode), the solver enumerates every
way of satisfying the axioms, building the corresponding µhb graph for
each, and cycle-checks it.  The litmus outcome is *observable* at the
microarchitecture level iff some satisfying graph is acyclic
(paper §2.1).

Semantics: ``AddEdge`` atoms *contribute* edges; a graph is only a
model if, under membership of the contributed edges, every axiom
formula re-evaluates to true (so ``EdgeExists`` tests, including
negated ones, are checked against the finished graph — edges are never
assumed into existence without an AddEdge justifying them).

The search is organized to stay polynomial-ish on the axioms the paper
uses:

* unconditional ``AddEdge`` conjuncts seed the graph;
* *Horn rules* — disjunctions whose only edge-contributing disjunct is a
  pure conjunction of AddEdges, guarded by an anti-monotone test (e.g.
  ``~EdgeExists(dx) \\/ AddEdge(wb)`` from the FIFO axioms) — are not
  branched on; they are forward-chained to a fixpoint at each leaf;
* genuinely branching disjunctions (total-order axioms, Read_Values
  alternatives) drive a backtracking search with incremental cycle
  pruning (sound for observability because edges only accumulate);
* test-only disjunctions (e.g. ``NoInterveningWrite``'s intervening-
  write check) are obligations verified on the finished graph, along
  with a full recheck of every axiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import UspecError
from repro.uspec import ast
from repro.uspec.eval import GroundEdge, GroundNode, LoadValue
from repro.uhb.graph import GraphEdge, UhbGraph

#: Safety valve: stop enumerating after this many leaves per test (far
#: above anything the 56-test suite produces).
MAX_GRAPHS = 2_000_000


def to_nnf(formula: ast.Formula, negate: bool = False) -> ast.Formula:
    """Negation normal form over ground formulas."""
    if isinstance(formula, ast.Truth):
        return ast.Truth(formula.value != negate)
    if isinstance(formula, ast.Not):
        return to_nnf(formula.body, not negate)
    if isinstance(formula, ast.And):
        parts = [to_nnf(op, negate) for op in formula.operands]
        return ast.disjunction(parts) if negate else ast.conjunction(parts)
    if isinstance(formula, ast.Or):
        parts = [to_nnf(op, negate) for op in formula.operands]
        return ast.conjunction(parts) if negate else ast.disjunction(parts)
    if isinstance(formula, (GroundEdge, GroundNode, LoadValue)):
        return ast.Not(formula) if negate else formula
    if isinstance(formula, ast.Implies):
        return to_nnf(ast.Or((ast.Not(formula.premise), formula.conclusion)), negate)
    raise UspecError(f"formula is not ground: {formula!r}")


def contains_add(formula: ast.Formula) -> bool:
    """Does ``formula`` (in NNF) contribute edges in a positive position?"""
    if isinstance(formula, GroundEdge):
        return formula.kind == "add"
    if isinstance(formula, (ast.And, ast.Or)):
        return any(contains_add(op) for op in formula.operands)
    return False


def _pure_adds(formula: ast.Formula) -> Optional[List[GroundEdge]]:
    """If ``formula`` is a conjunction of AddEdge atoms, return them."""
    if isinstance(formula, GroundEdge) and formula.kind == "add":
        return [formula]
    if isinstance(formula, ast.And):
        edges: List[GroundEdge] = []
        for op in formula.operands:
            part = _pure_adds(op)
            if part is None:
                return None
            edges.extend(part)
        return edges
    return None


def _anti_monotone(formula: ast.Formula) -> bool:
    """True if the formula can only flip true->false as edges are added
    (safe as a forward-chaining guard)."""
    if isinstance(formula, ast.Truth):
        return True
    if isinstance(formula, GroundNode):
        return True  # constant under our always-exists node semantics
    if isinstance(formula, ast.Not):
        return isinstance(formula.body, (GroundEdge, GroundNode))
    if isinstance(formula, (ast.And, ast.Or)):
        return all(_anti_monotone(op) for op in formula.operands)
    return False


def _branchiness(formula: ast.Formula) -> int:
    if isinstance(formula, ast.Or):
        return sum(_branchiness(op) for op in formula.operands) + len(formula.operands)
    if isinstance(formula, ast.And):
        return sum(_branchiness(op) for op in formula.operands)
    if isinstance(formula, ast.Not):
        return _branchiness(formula.body)
    return 0


@dataclass
class SolveResult:
    """Outcome of µhb enumeration for one litmus test."""

    observable: bool
    witness: Optional[UhbGraph]
    cyclic_witness: Optional[UhbGraph] = None
    leaves_enumerated: int = 0
    consistent_graphs: int = 0
    acyclic_graphs: int = 0

    @property
    def unobservable(self) -> bool:
        return not self.observable


class _Unsatisfiable(Exception):
    """The ground axioms are contradictory before any search."""


class UhbSolver:
    """Enumerates satisfying µhb graphs for a set of ground axioms."""

    def __init__(self, axiom_formulas: Dict[str, ast.Formula]):
        self.axiom_names = list(axiom_formulas)
        self.formulas = [to_nnf(axiom_formulas[name]) for name in self.axiom_names]
        self.base_adds: List[GroundEdge] = []
        self.rules: List[Tuple[ast.Formula, List[GroundEdge]]] = []
        self.obligations: List[ast.Formula] = []
        self.branching: List[ast.Formula] = []
        self.unsatisfiable = False
        try:
            for formula in self.formulas:
                self._classify(formula)
        except _Unsatisfiable:
            self.unsatisfiable = True
        self.branching.sort(key=_branchiness)

    # ------------------------------------------------------------------

    def _classify(self, formula: ast.Formula) -> None:
        if isinstance(formula, ast.Truth):
            if not formula.value:
                raise _Unsatisfiable
            return
        if isinstance(formula, ast.And):
            for op in formula.operands:
                self._classify(op)
            return
        if isinstance(formula, GroundEdge):
            if formula.kind == "add":
                self.base_adds.append(formula)
            else:
                self.obligations.append(formula)
            return
        if isinstance(formula, (ast.Not, GroundNode)):
            self.obligations.append(formula)
            return
        if isinstance(formula, ast.Or):
            with_adds = [op for op in formula.operands if contains_add(op)]
            without = [op for op in formula.operands if not contains_add(op)]
            if not with_adds:
                self.obligations.append(formula)
                return
            if len(with_adds) == 1:
                adds = _pure_adds(with_adds[0])
                guard = ast.disjunction(without)
                if adds is not None and _anti_monotone(guard):
                    self.rules.append((guard, adds))
                    return
            self.branching.append(formula)
            return
        if isinstance(formula, LoadValue):
            raise UspecError(
                "symbolic load values reached the µhb solver; ground the "
                "axioms in 'check' mode for microarchitectural verification"
            )
        raise UspecError(f"unexpected ground formula: {formula!r}")

    # ------------------------------------------------------------------

    def solve(
        self,
        find_all: bool = False,
        prune_cycles: bool = True,
        max_graphs: int = MAX_GRAPHS,
        stop_on_cyclic: bool = False,
    ) -> SolveResult:
        """Enumerate satisfying graphs.

        Stops at the first consistent acyclic graph unless ``find_all``.
        With ``prune_cycles=False`` cyclic graphs are completed and
        rechecked too (populating ``cyclic_witness`` — used to render
        paper-Figure-3a-style graphs for forbidden outcomes).
        """
        result = SolveResult(observable=False, witness=None)
        if self.unsatisfiable:
            return result
        graph = UhbGraph()
        seen: Set[frozenset] = set()

        def add_edge(edge: GroundEdge, undo: List[GroundEdge]) -> bool:
            """Add an edge; False means this branch can never be acyclic."""
            if graph.has_edge(edge.src, edge.dst):
                return True
            if prune_cycles and graph.would_close_cycle(edge.src, edge.dst):
                return False
            graph.add_edge(edge.src, edge.dst, edge.label, edge.colour)
            undo.append(edge)
            return True

        def undo_edges(undo: List[GroundEdge]) -> None:
            for edge in reversed(undo):
                graph.remove_edge(edge.src, edge.dst)

        def chain_rules(undo: List[GroundEdge]) -> bool:
            """Forward-chain Horn rules to fixpoint."""
            changed = True
            while changed:
                changed = False
                membership = graph.edge_set()
                for guard, adds in self.rules:
                    if all(graph.has_edge(e.src, e.dst) for e in adds):
                        continue
                    if self._holds(guard, membership):
                        continue
                    for edge in adds:
                        if not add_edge(edge, undo):
                            return False
                    changed = True
            return True

        def on_leaf() -> bool:
            """Returns True to stop the whole search."""
            undo: List[GroundEdge] = []
            try:
                if not chain_rules(undo):
                    return False
                key = frozenset(graph.edge_set())
                if key in seen:
                    return False
                seen.add(key)
                result.leaves_enumerated += 1
                if result.leaves_enumerated >= max_graphs:
                    raise UspecError(
                        f"µhb enumeration exceeded {max_graphs} graphs; "
                        "the axioms are likely underconstrained"
                    )
                if not self._recheck(graph.edge_set()):
                    return False
                result.consistent_graphs += 1
                if graph.is_acyclic():
                    result.acyclic_graphs += 1
                    if result.witness is None:
                        result.witness = graph.copy()
                    result.observable = True
                    return not find_all
                if result.cyclic_witness is None:
                    result.cyclic_witness = graph.copy()
                return stop_on_cyclic
            finally:
                undo_edges(undo)

        def search(items: List[ast.Formula]) -> bool:
            if not items:
                return on_leaf()
            head, rest = items[0], items[1:]
            if isinstance(head, ast.Truth):
                return search(rest) if head.value else False
            if isinstance(head, ast.And):
                return search(list(head.operands) + rest)
            if isinstance(head, ast.Or):
                for op in head.operands:
                    if search([op] + rest):
                        return True
                return False
            if isinstance(head, GroundEdge):
                if head.kind == "add":
                    if graph.has_edge(head.src, head.dst):
                        return search(rest)
                    if prune_cycles and graph.would_close_cycle(head.src, head.dst):
                        return False
                    graph.add_edge(head.src, head.dst, head.label, head.colour)
                    stop = search(rest)
                    graph.remove_edge(head.src, head.dst)
                    return stop
                return search(rest)  # recheck obligation
            if isinstance(head, (ast.Not, GroundNode)):
                return search(rest)  # recheck obligation
            raise UspecError(f"unexpected formula in search: {head!r}")

        base_undo: List[GroundEdge] = []
        try:
            for edge in self.base_adds:
                if not add_edge(edge, base_undo):
                    return result
            search(list(self.branching))
        finally:
            undo_edges(base_undo)
        return result

    def find_cyclic_witness(self, max_graphs: int = MAX_GRAPHS) -> Optional[UhbGraph]:
        """A consistent but cyclic µhb graph, if one exists (for
        rendering why a forbidden outcome is unobservable)."""
        result = self.solve(
            prune_cycles=False, max_graphs=max_graphs, stop_on_cyclic=True
        )
        return result.cyclic_witness

    # ------------------------------------------------------------------

    def _recheck(self, membership: Set[GraphEdge]) -> bool:
        return all(self._holds(f, membership) for f in self.formulas)

    def _holds(self, formula: ast.Formula, membership: Set[GraphEdge]) -> bool:
        if isinstance(formula, ast.Truth):
            return formula.value
        if isinstance(formula, ast.Not):
            return not self._holds(formula.body, membership)
        if isinstance(formula, ast.And):
            return all(self._holds(op, membership) for op in formula.operands)
        if isinstance(formula, ast.Or):
            return any(self._holds(op, membership) for op in formula.operands)
        if isinstance(formula, GroundEdge):
            return (formula.src, formula.dst) in membership
        if isinstance(formula, GroundNode):
            return True
        raise UspecError(f"cannot recheck {formula!r}")
