"""The asyncio job server: HTTP front end, dedup, sharding, streaming.

Request lifecycle (the dataflow diagram lives in
``docs/architecture.md``; operator documentation in
``docs/serving.md``):

1. **validate** — the JSON body canonicalizes through
   :func:`repro.serve.jobs.validate_spec` (``verify`` becomes a
   one-test suite);
2. **dedup** — :func:`job_key` digests the request's full input
   closure.  An in-flight job with the same key is *coalesced* (the
   new submission attaches to the running computation); a finished
   record under the key is a *cache hit* served straight from disk —
   no worker pool, no recomputation;
3. **shard** — suite jobs split into per-test units: verdict-tier hits
   are replayed parent-side (the same prefetch discipline as
   ``verify_suite``), and only the misses dispatch to the shared
   :class:`~repro.serve.pool.WorkerPool`.  Fuzz jobs run
   :func:`run_fuzz` in a thread with the server's cache directory, so
   they inherit the campaign's own checkpointing and oracle tiers;
4. **stream** — every job appends schema-versioned progress events
   (kind ``rtlcheck-serve-event``), served as NDJSON from
   ``GET /v1/jobs/<key>/events``;
5. **report** — the finished document is the *same* schema-versioned
   report the CLI writes (``rtlcheck-run-report`` /
   ``rtlcheck-difftest-report``), persisted under
   ``<cache root>/serve/reports/`` for warm resubmissions.

Resumability: accepted specs are journaled until their job reaches a
terminal state; a restarted server rescans the journal and resubmits,
and each resumed job's units replay from the verdict/oracle tiers and
its :class:`CheckpointManifest` — a killed server loses at most
in-flight units.

The HTTP layer is deliberately stdlib-only (``asyncio.start_server``
plus hand-rolled HTTP/1.1 parsing, ``Connection: close`` on every
response) — this repo has a no-runtime-dependencies contract.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.serve.jobs import (
    JobStore,
    job_key,
    make_event,
    rtlcheck_for,
    validate_spec,
)
from repro.serve.pool import WorkerPool, suite_unit

#: Default TCP port (``--port`` overrides; ``port=0`` picks a free one).
DEFAULT_PORT = 8357

_REQUEST_TIMEOUT = 30.0


class Job:
    """One accepted job: spec, state machine, and its event log.

    States: ``queued`` → ``running`` → ``done`` | ``failed``.  Events
    are appended only from the event-loop thread (fuzz progress is
    marshalled in via ``call_soon_threadsafe``), so no locking is
    needed; streamers wait on a fresh :class:`asyncio.Event` per
    appended entry.
    """

    def __init__(self, key: str, spec: Dict[str, Any], source: str):
        self.key = key
        self.spec = spec
        self.source = source
        self.state = "queued"
        self.report: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.stats: Dict[str, Any] = {}
        self.events: list = []
        self.task: Optional[asyncio.Task] = None
        self._new_event = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def emit(self, event_type: str, **fields: Any) -> None:
        self.events.append(
            make_event(self.key, len(self.events), event_type, **fields)
        )
        waiter, self._new_event = self._new_event, asyncio.Event()
        waiter.set()

    async def stream(self, start: int = 0) -> AsyncIterator[Dict[str, Any]]:
        """Replay events from ``start``, then follow live until the job
        reaches a terminal state."""
        index = start
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.terminal:
                return
            await self._new_event.wait()

    def summary(self) -> Dict[str, Any]:
        return {
            "job": self.key,
            "kind": self.spec["kind"],
            "state": self.state,
            "source": self.source,
            "events": len(self.events),
            "stats": dict(self.stats),
            "error": self.error,
        }


class JobServer:
    """The verification job server (``python -m repro serve``)."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        jobs: int = 2,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        retries: int = 1,
    ):
        from repro.cache import default_cache_dir

        self.cache_dir = str(cache_dir or default_cache_dir())
        self.host = host
        self.port = port
        self.jobs = jobs
        self.retries = retries
        self.store = JobStore(self.cache_dir)
        self.pool = WorkerPool(jobs)
        self.jobs_by_key: Dict[str, Job] = {}
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "completed": 0,
            "failed": 0,
            "resumed_jobs": 0,
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._resume_pending()

    def _resume_pending(self) -> None:
        """Resubmit specs an interrupted server left in the journal."""
        for key, spec in self.store.pending():
            if key in self.jobs_by_key:
                continue
            try:
                job, source = self.submit(spec)
            except ReproError:
                # The spec no longer validates (e.g. a renamed test) —
                # drop the journal entry rather than wedging restarts.
                self.store.remove_pending(key)
                continue
            if source == "created":
                self.counters["resumed_jobs"] += 1

    async def serve_forever(self) -> None:
        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Stop accepting requests, cancel running jobs (their pending
        journal entries survive for the next server), tear the pool
        down, and release :meth:`serve_forever`."""
        if self._server is not None:
            self._server.close()
        tasks = [
            job.task
            for job in self.jobs_by_key.values()
            if job.task is not None and not job.task.done()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self.pool.shutdown()
        if self._stopped is not None:
            self._stopped.set()

    # -- submission: validate -> dedup -> run ---------------------------

    def submit(self, payload: Any) -> Tuple[Job, str]:
        """Accept one job document.  Returns ``(job, source)`` where
        ``source`` is ``"created"`` (a fresh computation),
        ``"coalesced"`` (attached to an identical in-flight job), or
        ``"cache"`` (a finished result replayed from memory or disk)."""
        spec = validate_spec(payload)
        key = job_key(spec)
        job = self.jobs_by_key.get(key)
        if job is not None and job.state != "failed":
            if job.terminal:
                self.counters["cache_hits"] += 1
                return job, "cache"
            self.counters["coalesced"] += 1
            return job, "coalesced"
        record = self.store.load_record(key)
        if record is not None:
            job = Job(key, spec, source="cache")
            job.state = "done"
            job.report = record["report"]
            job.stats = dict(record.get("stats") or {})
            job.emit("done", stats=job.stats, source="cache")
            self.jobs_by_key[key] = job
            self.counters["cache_hits"] += 1
            return job, "cache"
        job = Job(key, spec, source="created")
        self.jobs_by_key[key] = job
        self.store.add_pending(key, spec)
        self.counters["submitted"] += 1
        job.task = asyncio.get_running_loop().create_task(self._run_job(job))
        return job, "created"

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.emit(
            "started", job_kind=job.spec["kind"], params=job.spec["params"]
        )
        try:
            if job.spec["kind"] == "suite":
                report = await self._run_suite_job(job)
            else:
                loop = asyncio.get_running_loop()
                report = await asyncio.to_thread(
                    self._run_fuzz_sync, job, loop
                )
        except asyncio.CancelledError:
            # Server shutdown: the pending journal entry survives, so a
            # restarted server resumes this job from its checkpoints.
            job.error = "cancelled by server shutdown"
            job.state = "failed"
            job.emit("failed", error=job.error)
            raise
        except Exception as exc:
            job.error = str(exc) or repr(exc)
            job.state = "failed"
            self.counters["failed"] += 1
            self.store.remove_pending(job.key)
            job.emit("failed", error=job.error)
        else:
            job.report = report
            self.store.store_record(job.key, job.spec, report, job.stats)
            self.store.remove_pending(job.key)
            job.state = "done"
            self.counters["completed"] += 1
            job.emit("done", stats=dict(job.stats), source="created")

    async def _run_suite_job(self, job: Job) -> Dict[str, Any]:
        """Shard a suite job into per-test units over the shared pool,
        with the same parent-side verdict prefetch as ``verify_suite``:
        a fully-warm job completes without the pool ever existing."""
        from repro import get_test, obs
        from repro.cache import VerificationCache

        params = job.spec["params"]
        memory_variant = params["memory_variant"]
        cache = VerificationCache(self.cache_dir)
        rtlcheck = rtlcheck_for(params, cache=cache)
        tests = [get_test(name) for name in params["tests"]]
        manifest = cache.checkpoint(job.key, total=len(tests))
        job.stats["resumed"] = manifest.resumed

        results: Dict[str, Any] = {}
        pending = []
        for test in tests:
            cached = cache.load_verdict(
                rtlcheck.verdict_key(test, memory_variant),
                observe=params["observe"],
            )
            if cached is None:
                pending.append(test)
                continue
            results[test.name] = cached
            manifest.mark_done(test.name)
            self._emit_unit(job, cached, cached=True)
        job.stats["units_total"] = len(tests)
        job.stats["units_cached"] = len(tests) - len(pending)

        async def run_one(test):
            result, stats = await self.pool.run_unit(
                suite_unit,
                (rtlcheck, test, memory_variant),
                retries=self.retries,
                label=test.name,
            )
            if stats:
                cache.stats.merge(stats)
            results[test.name] = result
            manifest.mark_done(test.name)
            self._emit_unit(job, result, cached=False)

        if pending:
            outcomes = await asyncio.gather(
                *(run_one(test) for test in pending), return_exceptions=True
            )
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        manifest.finish()

        ordered = {test.name: results[test.name] for test in tests}
        report = obs.suite_report(
            ordered,
            config_name=params["config"],
            memory_variant=memory_variant,
            jobs=None,
        )
        problems = obs.validate_report(report)
        if problems:
            raise ReproError(
                "suite job produced an invalid report: " + "; ".join(problems)
            )
        job.stats["bugs_found"] = report["aggregates"]["bugs_found"]
        job.stats["cache"] = cache.stats.snapshot()
        return report

    def _emit_unit(self, job: Job, result, cached: bool) -> None:
        job.emit(
            "unit",
            test=result.test.name,
            summary=result.summary(),
            bug_found=result.bug_found,
            cached=cached,
        )

    def _run_fuzz_sync(self, job: Job, loop: asyncio.AbstractEventLoop):
        """Thread body of a fuzz job.  ``run_fuzz`` brings its own
        checkpointing, oracle memoization, and worker pool; progress
        callbacks marshal back onto the event loop as stream events."""
        from repro.difftest import FuzzConfig, run_fuzz, validate_fuzz_report

        params = job.spec["params"]
        config = FuzzConfig(
            seed=params["seed"],
            budget=params["budget"],
            oracles=tuple(params["oracles"]),
            memory_variant=params["memory_variant"],
            jobs=params["jobs"],
            long_programs=params["long_programs"],
            trace_samples=params["trace_samples"],
            state_backend=params["state_backend"],
            cache_dir=self.cache_dir,
            crash_retries=self.retries,
        )

        def progress(index, name, new=None):
            fields = {"index": index, "test": name}
            if new is not None:
                fields["new_coverage"] = new
            loop.call_soon_threadsafe(
                functools.partial(job.emit, "progress", **fields)
            )

        result = run_fuzz(config, progress=progress)
        report = result.report()
        problems = validate_fuzz_report(report)
        if problems:
            raise ReproError(
                "fuzz job produced an invalid report: " + "; ".join(problems)
            )
        job.stats["tests_run"] = result.tests_run
        job.stats["discrepancies"] = len(result.discrepancies)
        job.stats["resumed"] = result.resumed
        job.stats["cache"] = dict(result.cache_stats)
        return report

    # -- HTTP front end -------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), _REQUEST_TIMEOUT
            )
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), _REQUEST_TIMEOUT
                )
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            body = b""
            if content_length:
                body = await asyncio.wait_for(
                    reader.readexactly(content_length), _REQUEST_TIMEOUT
                )
            await self._route(method, target.split("?", 1)[0], body, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            ValueError,
        ):
            pass
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a handler bug must not kill the server
            try:
                await self._send_json(writer, 500, {"error": str(exc)})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, method: str, path: str, body: bytes, writer) -> None:
        if path == "/v1/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"status": "ok", "cache_dir": self.cache_dir, "jobs": self.jobs},
            )
            return
        if path == "/v1/stats" and method == "GET":
            await self._send_json(
                writer,
                200,
                {
                    "counters": dict(self.counters),
                    "pool": dict(self.pool.counters),
                    "jobs_known": len(self.jobs_by_key),
                },
            )
            return
        if path == "/v1/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8"))
            except ValueError:
                await self._send_json(
                    writer, 400, {"error": "request body is not valid JSON"}
                )
                return
            try:
                job, source = self.submit(payload)
            except ReproError as exc:
                await self._send_json(writer, 400, {"error": str(exc)})
                return
            status = 200 if job.terminal else 202
            await self._send_json(
                writer,
                status,
                {"job": job.key, "state": job.state, "source": source},
            )
            return
        if path == "/v1/jobs" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"jobs": [j.summary() for j in self.jobs_by_key.values()]},
            )
            return
        if path == "/v1/shutdown" and method == "POST":
            await self._send_json(writer, 200, {"status": "stopping"})
            asyncio.get_running_loop().create_task(self.shutdown())
            return
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            key, _, tail = rest.partition("/")
            job = self.jobs_by_key.get(key)
            if job is None:
                await self._send_json(
                    writer, 404, {"error": f"unknown job {key!r}"}
                )
                return
            if tail == "":
                await self._send_json(writer, 200, job.summary())
                return
            if tail == "report":
                if job.state == "done":
                    await self._send_json(writer, 200, job.report)
                elif job.state == "failed":
                    await self._send_json(
                        writer, 410, {"error": job.error, "state": "failed"}
                    )
                else:
                    await self._send_json(
                        writer,
                        404,
                        {"error": "job not finished", "state": job.state},
                    )
                return
            if tail == "events":
                await self._stream_events(writer, job)
                return
        await self._send_json(
            writer, 404, {"error": f"no route for {method} {path}"}
        )

    async def _send_json(self, writer, status: int, document: Any) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 410: "Gone", 500: "Internal Server Error"}
        payload = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _stream_events(self, writer, job: Job) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for event in job.stream():
            writer.write(
                (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
            )
            await writer.drain()


class ThreadedServer:
    """A :class:`JobServer` on its own event-loop thread — the harness
    the tests and benchmarks drive a real socket through.

    ``stop(hard=True)`` cancels running jobs without draining them
    (their pending journal survives), which is how the kill-and-restart
    tests model a dead server process.
    """

    def __init__(self, **kwargs: Any):
        kwargs.setdefault("port", 0)
        self._kwargs = kwargs
        self.server: Optional[JobServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("job server did not start within 30s")
        if self._startup_error is not None:
            raise ReproError(f"job server failed to start: {self._startup_error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.server = JobServer(**self._kwargs)
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self.server.serve_forever()

    def stop(self) -> None:
        if (
            self.server is not None
            and self.loop is not None
            and self.loop.is_running()
        ):
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self.loop
            )
            try:
                future.result(timeout=30)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
