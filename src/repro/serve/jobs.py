"""Job specifications, cache-keyed identity, and the persistent store.

A *job* is one verification request — a suite run (``verify`` is
canonicalized to a one-test suite, so the two coalesce) or a fuzz
campaign — submitted to the job server as a JSON document.  This module
owns three things:

* **validation / canonicalization** (:func:`validate_spec`): every
  parameter is defaulted and checked up front, so a malformed request
  is rejected at submission with a :class:`ReproError` message instead
  of failing mid-campaign;
* **identity** (:func:`job_key`): the content key of a job is a
  :func:`repro.cache.keys.campaign_key` digest over its canonical
  parameters — for suite jobs, the ordered list of per-test *verdict*
  keys, so two requests share a key exactly when every underlying
  verdict computation is shared.  Execution policy (fuzz ``jobs``) is
  deliberately excluded, the same rule the fuzz campaign key follows:
  results are independent of worker count, so requests differing only
  in parallelism coalesce;
* **persistence** (:class:`JobStore`): finished job records live under
  ``<cache root>/serve/reports/<key>.json`` (a warm resubmission is a
  pure disk read — no worker pool, no recomputation), and accepted but
  unfinished specs are journaled under ``<cache root>/serve/pending/``
  so a killed server rescans and resumes them on restart.

Because :func:`campaign_key` folds in the difftest toolchain
fingerprint, any edit to verification code orphans stored job records
the same way it orphans verdict entries — a stale report can never
outlive the logic that produced it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Report kinds re-exported from the central registry in
#: :mod:`repro.obs.report` (all toolchain-written kinds are
#: discoverable there).
from repro.obs.report import SCHEMA_VERSION, SERVE_EVENT_KIND, SERVE_JOB_KIND

_STATE_BACKENDS = ("array", "kernel", "dict")
_MEMORY_VARIANTS = ("fixed", "buggy")
_EXPLORERS = ("graph", "per-property")

#: Upper bound on a submitted fuzz budget — a server guard, not a
#: campaign limit (the CLI has no such cap).
MAX_FUZZ_BUDGET = 100_000
#: Upper bound on a submitted per-job ``jobs`` value.
MAX_JOB_WORKERS = 64


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ReproError(message)


def _pop_field(params: Dict[str, Any], name: str, default: Any) -> Any:
    return params.pop(name, default)


def validate_spec(payload: Any) -> Dict[str, Any]:
    """Canonicalize one submitted job document.

    Returns ``{"kind": "suite"|"fuzz", "params": {...}}`` with every
    parameter present and validated; raises :class:`ReproError` with a
    client-facing message otherwise.  ``verify`` requests canonicalize
    to a one-test suite, so ``verify mp`` and ``suite --only mp``
    submissions share a job key and coalesce.
    """
    _require(isinstance(payload, dict), "job spec must be a JSON object")
    payload = dict(payload)
    kind = payload.pop("kind", None)
    _require(
        kind in ("verify", "suite", "fuzz"),
        f"job kind must be 'verify', 'suite', or 'fuzz', got {kind!r}",
    )
    params = payload.pop("params", {})
    _require(isinstance(params, dict), "job 'params' must be a JSON object")
    _require(
        not payload,
        f"unknown top-level job keys: {sorted(payload)}",
    )
    params = dict(params)
    if kind == "fuzz":
        return {"kind": "fuzz", "params": _fuzz_params(params)}
    if kind == "verify":
        test = params.pop("test", None)
        _require(
            isinstance(test, str),
            "verify jobs need a 'test' name (string)",
        )
        params["tests"] = [test]
    return {"kind": "suite", "params": _suite_params(params)}


def _suite_params(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro import CONFIGS, get_test, paper_suite

    tests = _pop_field(params, "tests", None)
    if tests is None:
        tests = [test.name for test in paper_suite()]
    _require(
        isinstance(tests, list)
        and tests
        and all(isinstance(name, str) for name in tests),
        "suite 'tests' must be a non-empty list of test names",
    )
    seen = set()
    for name in tests:
        get_test(name)  # raises LitmusError on unknown names
        _require(name not in seen, f"duplicate test name {name!r} in suite job")
        seen.add(name)
    memory_variant = _pop_field(params, "memory_variant", "fixed")
    _require(
        memory_variant in _MEMORY_VARIANTS,
        f"memory_variant must be one of {list(_MEMORY_VARIANTS)}, "
        f"got {memory_variant!r}",
    )
    config = _pop_field(params, "config", "Full_Proof")
    _require(
        config in CONFIGS,
        f"config must be one of {sorted(CONFIGS)}, got {config!r}",
    )
    explorer = _pop_field(params, "explorer", "graph")
    _require(
        explorer in _EXPLORERS,
        f"explorer must be one of {list(_EXPLORERS)}, got {explorer!r}",
    )
    state_backend = _pop_field(params, "state_backend", "array")
    _require(
        state_backend in _STATE_BACKENDS,
        f"state_backend must be one of {list(_STATE_BACKENDS)}, "
        f"got {state_backend!r}",
    )
    observe = _pop_field(params, "observe", False)
    _require(isinstance(observe, bool), "'observe' must be a boolean")
    _require(not params, f"unknown suite job params: {sorted(params)}")
    return {
        "tests": list(tests),
        "memory_variant": memory_variant,
        "config": config,
        "explorer": explorer,
        "state_backend": state_backend,
        "observe": observe,
    }


def _fuzz_params(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.difftest import ORACLE_NAMES
    from repro.difftest.oracles import DEFAULT_TRACE_SAMPLES

    seed = _pop_field(params, "seed", 0)
    _require(isinstance(seed, int), "'seed' must be an integer")
    budget = _pop_field(params, "budget", 100)
    _require(
        isinstance(budget, int) and 0 <= budget <= MAX_FUZZ_BUDGET,
        f"'budget' must be an integer in [0, {MAX_FUZZ_BUDGET}]",
    )
    oracles = _pop_field(params, "oracles", list(ORACLE_NAMES))
    _require(
        isinstance(oracles, list)
        and oracles
        and all(o in ORACLE_NAMES for o in oracles),
        f"'oracles' must be a non-empty subset of {list(ORACLE_NAMES)}",
    )
    memory_variant = _pop_field(params, "memory_variant", "fixed")
    _require(
        memory_variant in _MEMORY_VARIANTS,
        f"memory_variant must be one of {list(_MEMORY_VARIANTS)}, "
        f"got {memory_variant!r}",
    )
    long_programs = _pop_field(params, "long_programs", False)
    _require(isinstance(long_programs, bool), "'long_programs' must be a boolean")
    _require(
        not long_programs or "trace" in oracles,
        "long_programs requires the 'trace' oracle",
    )
    trace_samples = _pop_field(params, "trace_samples", DEFAULT_TRACE_SAMPLES)
    _require(
        isinstance(trace_samples, int) and trace_samples >= 1,
        "'trace_samples' must be an integer >= 1",
    )
    state_backend = _pop_field(params, "state_backend", "array")
    _require(
        state_backend in _STATE_BACKENDS,
        f"state_backend must be one of {list(_STATE_BACKENDS)}, "
        f"got {state_backend!r}",
    )
    jobs = _pop_field(params, "jobs", 1)
    _require(
        isinstance(jobs, int) and 1 <= jobs <= MAX_JOB_WORKERS,
        f"'jobs' must be an integer in [1, {MAX_JOB_WORKERS}]",
    )
    _require(not params, f"unknown fuzz job params: {sorted(params)}")
    return {
        "seed": seed,
        "budget": budget,
        "oracles": list(oracles),
        "memory_variant": memory_variant,
        "long_programs": long_programs,
        "trace_samples": trace_samples,
        "state_backend": state_backend,
        "jobs": jobs,
    }


def rtlcheck_for(params: Dict[str, Any], cache=None):
    """The :class:`RTLCheck` instance a canonical suite-job parameter
    set describes."""
    from repro import CONFIGS, RTLCheck

    return RTLCheck(
        config=CONFIGS[params["config"]],
        use_reach_graph=(params["explorer"] == "graph"),
        observe=params["observe"],
        cache=cache,
        state_backend=params["state_backend"],
    )


def job_key(spec: Dict[str, Any]) -> str:
    """The content key of a canonical job spec.

    Suite jobs digest the ordered per-test *verdict keys* — the full
    input closure of every unit of work — plus the report-shaping
    parameters; fuzz jobs digest the campaign parameters minus
    ``jobs`` (worker count never changes results, so it must never
    split the cache).
    """
    from repro.cache import keys as cache_keys

    params = spec["params"]
    if spec["kind"] == "fuzz":
        payload = {k: v for k, v in params.items() if k != "jobs"}
        return cache_keys.campaign_key("serve-fuzz", payload)
    from repro import get_test

    rtlcheck = rtlcheck_for(params)
    payload = {
        "memory_variant": params["memory_variant"],
        "config": params["config"],
        "observe": params["observe"],
        "verdicts": [
            rtlcheck.verdict_key(get_test(name), params["memory_variant"])
            for name in params["tests"]
        ],
    }
    return cache_keys.campaign_key("serve-suite", payload)


#: Envelope keys of a progress event — payload fields may not shadow
#: them (a ``kind=`` payload once silently clobbered the event kind and
#: broke stream validation).
_EVENT_ENVELOPE = ("schema_version", "kind", "job", "seq", "event")


def make_event(job: str, seq: int, event: str, **fields: Any) -> Dict[str, Any]:
    """One schema-versioned NDJSON progress event."""
    clashes = sorted(set(fields) & set(_EVENT_ENVELOPE))
    if clashes:
        raise ReproError(
            f"event payload fields shadow envelope keys: {clashes}"
        )
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": SERVE_EVENT_KIND,
        "job": job,
        "seq": seq,
        "event": event,
    }
    document.update(fields)
    return document


_EVENT_TYPES = ("started", "unit", "progress", "done", "failed")


def validate_event(event: Any) -> List[str]:
    """Shape-check one streamed progress event (used by tests and the
    CI smoke's NDJSON validation)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return ["event is not a JSON object"]
    for key in ("schema_version", "kind", "job", "seq", "event"):
        if key not in event:
            errors.append(f"missing event key {key!r}")
    if errors:
        return errors
    if event["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {event['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if event["kind"] != SERVE_EVENT_KIND:
        errors.append(f"kind {event['kind']!r} != {SERVE_EVENT_KIND!r}")
    if event["event"] not in _EVENT_TYPES:
        errors.append(f"unknown event type {event['event']!r}")
    if not isinstance(event["seq"], int) or event["seq"] < 0:
        errors.append(f"seq must be a non-negative integer, got {event['seq']!r}")
    return errors


class JobStore:
    """On-disk job records and the pending-spec journal.

    Lives under ``<cache root>/serve/`` beside the artifact tiers it
    complements.  Records are immutable values under content keys, so
    the same atomic write discipline as :class:`VerificationCache`
    applies: ``tempfile`` + ``os.replace``, reads never crash (corrupt
    or stale records are dropped and treated as misses).
    """

    def __init__(self, cache_root: str):
        self.root = Path(cache_root) / "serve"
        self.reports = self.root / "reports"
        self.pending_dir = self.root / "pending"

    # -- atomic JSON plumbing ------------------------------------------

    def _write(self, path: Path, document: Dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, sort_keys=True)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)

    def _read(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return document if isinstance(document, dict) else None

    # -- finished job records ------------------------------------------

    def load_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record of a finished job, or ``None``.  Stale
        schema versions are dropped, not reinterpreted."""
        record = self._read(self.reports / f"{key}.json")
        if record is None:
            return None
        if (
            record.get("kind") != SERVE_JOB_KIND
            or record.get("schema_version") != SCHEMA_VERSION
            or record.get("job") != key
            or "report" not in record
        ):
            try:
                (self.reports / f"{key}.json").unlink()
            except OSError:
                pass
            return None
        return record

    def store_record(
        self,
        key: str,
        spec: Dict[str, Any],
        report: Dict[str, Any],
        stats: Dict[str, Any],
    ) -> Dict[str, Any]:
        record = {
            "schema_version": SCHEMA_VERSION,
            "kind": SERVE_JOB_KIND,
            "job": key,
            "spec": spec,
            "report": report,
            "stats": stats,
        }
        self._write(self.reports / f"{key}.json", record)
        return record

    # -- the pending journal -------------------------------------------

    def add_pending(self, key: str, spec: Dict[str, Any]) -> None:
        self._write(self.pending_dir / f"{key}.json", {"job": key, "spec": spec})

    def remove_pending(self, key: str) -> None:
        try:
            (self.pending_dir / f"{key}.json").unlink()
        except OSError:
            pass

    def pending(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Accepted-but-unfinished specs left by an interrupted server,
        in deterministic (key-sorted) order."""
        out: List[Tuple[str, Dict[str, Any]]] = []
        if not self.pending_dir.is_dir():
            return out
        for path in sorted(self.pending_dir.glob("*.json")):
            document = self._read(path)
            if document is None or "spec" not in document:
                continue
            out.append((document.get("job", path.stem), document["spec"]))
        return out
