"""`repro.serve` — verification-as-a-service.

A long-running asyncio job server (``python -m repro serve``) that
accepts verify/suite/fuzz jobs as JSON over a stdlib-only HTTP front
end, dedupes and coalesces identical requests via the content-addressed
cache keys, shards work across a shared process pool, streams per-test
progress as NDJSON, and survives kills through the cache's checkpoint
manifests.  Responses carry the same schema-versioned reports as the
CLI — byte-identical verdicts to an equivalent local run.  See
``docs/serving.md`` for the operator's manual.
"""

from repro.serve.app import DEFAULT_PORT, Job, JobServer, ThreadedServer
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import (
    JobStore,
    job_key,
    make_event,
    validate_event,
    validate_spec,
)
from repro.serve.pool import CRASH_ONCE_ENV, ServeUnitError, WorkerPool

__all__ = [
    "CRASH_ONCE_ENV",
    "DEFAULT_PORT",
    "Job",
    "JobServer",
    "JobStore",
    "ServeClient",
    "ServeError",
    "ServeUnitError",
    "ThreadedServer",
    "WorkerPool",
    "job_key",
    "make_event",
    "validate_event",
    "validate_spec",
]
