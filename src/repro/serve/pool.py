"""The server's shared worker pool, with bounded per-unit crash retry.

One :class:`WorkerPool` is shared by every suite job the server runs —
the ``--jobs`` flag bounds *total* worker processes, not per-job
parallelism.  The pool is created lazily on the first dispatched unit,
which is what makes the warm-path contract observable: a fully-warm
job (every verdict served parent-side from the cache) never spawns a
single worker process, and ``/v1/stats`` exposes the ``pools_spawned``
/ ``units_dispatched`` counters the tests assert on.

Crash containment extends PR 6's ``crashed`` contract from recording
to recovery: a unit whose worker dies (any exception, including a
``BrokenProcessPool`` from a killed process) is retried up to
``retries`` times, with the pool torn down and lazily rebuilt after a
break so one dead worker cannot poison subsequent units.  Only when
retries are exhausted does the unit's error surface — and it fails
that *job*, never the server.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Tuple

from repro.errors import ReproError

#: Crash-injection hook for the retry regression tests, in the same
#: spirit as ``REPRO_DIFFTEST_CRASH_TEST``: the value is
#: ``"<test>:<path>"``, and the worker raises for ``<test>`` only while
#: ``<path>`` exists, unlinking it first — so the first attempt
#: crashes and the bounded retry deterministically succeeds.
CRASH_ONCE_ENV = "REPRO_SERVE_CRASH_ONCE"


class ServeUnitError(ReproError):
    """A unit of server work failed after exhausting its crash retries."""


def _maybe_injected_crash(name: str) -> None:
    spec = os.environ.get(CRASH_ONCE_ENV)
    if not spec:
        return
    target, _, path = spec.partition(":")
    if target == name and path and os.path.exists(path):
        os.unlink(path)
        raise RuntimeError(f"injected serve worker crash on {name}")


def suite_unit(rtlcheck, test, memory_variant) -> Tuple[Any, Any]:
    """Module-level pool task: verify one suite-job test.  Delegates to
    the same worker body ``verify_suite`` uses, so a served verdict is
    the CLI's verdict by construction."""
    from repro.core.rtlcheck import _verify_suite_worker

    _maybe_injected_crash(test.name)
    return _verify_suite_worker(rtlcheck, test, memory_variant)


class WorkerPool:
    """A lazily created, crash-recovering ``ProcessPoolExecutor``."""

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ReproError(f"worker pool size must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self.counters: Dict[str, int] = {
            "pools_spawned": 0,
            "units_dispatched": 0,
            "unit_retries": 0,
            "pools_broken": 0,
        }

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # The pool MUST use the spawn start method: the server forks
            # workers lazily, while client connections are open, and a
            # fork-started worker inherits duplicates of every open
            # socket fd.  Those long-lived duplicates keep a streamed
            # HTTP response alive after ``writer.close()`` — the client
            # never sees EOF.  Spawn re-execs the interpreter, so no
            # descriptors leak into the workers.
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
            )
            self.counters["pools_spawned"] += 1
        return self._pool

    async def run_unit(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        retries: int = 1,
        label: str = "",
    ) -> Any:
        """Run ``fn(*args)`` in a worker, retrying crashes up to
        ``retries`` times.  Raises :class:`ServeUnitError` when the
        last attempt also fails."""
        loop = asyncio.get_running_loop()
        last: BaseException | None = None
        for attempt in range(retries + 1):
            if attempt:
                self.counters["unit_retries"] += 1
            pool = self._ensure()
            self.counters["units_dispatched"] += 1
            try:
                return await loop.run_in_executor(
                    pool, _call_unit, fn, args
                )
            except BrokenProcessPool as exc:
                # The pool is unusable after a hard worker death; drop
                # it so the next attempt (or next unit) rebuilds fresh.
                last = exc
                self._pool = None
                self.counters["pools_broken"] += 1
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                last = exc
        raise ServeUnitError(
            f"unit {label or fn.__name__!r} failed after "
            f"{retries + 1} attempt(s): {last!r}"
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


def _call_unit(fn: Callable[..., Any], args: Tuple[Any, ...]) -> Any:
    """Picklable dispatch shim (``run_in_executor`` passes positional
    args only)."""
    return fn(*args)
