"""A stdlib HTTP client for the job server (``python -m repro submit``).

Thin by design: every method maps to one endpoint, responses are the
server's JSON documents verbatim, and :meth:`ServeClient.events` is a
generator over the NDJSON progress stream.  The ``run`` convenience
drives the whole lifecycle — submit, stream (unless the submission was
a cache hit), fetch the report — which is exactly what the CLI
``submit`` command does.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ReproError


class ServeError(ReproError):
    """The job server rejected a request or became unreachable."""


class ServeClient:
    """Client for one ``host:port`` job server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8357,
                 timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"cannot reach job server at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            document = None
        return response.status, document

    def _expect(self, status: int, document: Any, context: str) -> Any:
        if status >= 400:
            detail = (document or {}).get("error") if isinstance(
                document, dict
            ) else None
            raise ServeError(
                f"{context} failed ({status}): {detail or 'no detail'}"
            )
        return document

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._expect(*self._request("GET", "/v1/healthz"), "healthz")

    def stats(self) -> Dict[str, Any]:
        return self._expect(*self._request("GET", "/v1/stats"), "stats")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job document; returns ``{"job", "state", "source"}``."""
        return self._expect(
            *self._request("POST", "/v1/jobs", body=spec), "submit"
        )

    def jobs(self) -> Dict[str, Any]:
        return self._expect(*self._request("GET", "/v1/jobs"), "job list")

    def status(self, job: str) -> Dict[str, Any]:
        return self._expect(
            *self._request("GET", f"/v1/jobs/{job}"), f"status of {job}"
        )

    def report(self, job: str) -> Dict[str, Any]:
        return self._expect(
            *self._request("GET", f"/v1/jobs/{job}/report"), f"report of {job}"
        )

    def shutdown(self) -> Dict[str, Any]:
        return self._expect(
            *self._request("POST", "/v1/shutdown"), "shutdown"
        )

    def events(self, job: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON progress events; the generator ends
        when the job reaches a terminal state (the server closes the
        connection after the ``done``/``failed`` event)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job}/events")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read().decode("utf-8", "replace")
                raise ServeError(
                    f"event stream of {job} failed ({response.status}): {raw}"
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"event stream of {job} broke: {exc}") from exc
        finally:
            connection.close()

    # -- conveniences ---------------------------------------------------

    def wait(self, job: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until ``job`` is terminal; returns its final summary."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            summary = self.status(job)
            if summary["state"] in ("done", "failed"):
                return summary
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(f"timed out waiting for job {job}")
            time.sleep(poll)

    def run(
        self,
        spec: Dict[str, Any],
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Submit, follow the event stream to completion, and fetch the
        report.  Returns ``(submission, report)``; raises
        :class:`ServeError` if the job failed."""
        submission = self.submit(spec)
        key = submission["job"]
        if submission["state"] not in ("done", "failed"):
            for event in self.events(key):
                if on_event is not None:
                    on_event(event)
        final = self.wait(key, timeout=self.timeout)
        if final["state"] == "failed":
            raise ServeError(f"job {key} failed: {final.get('error')}")
        return submission, self.report(key)
