"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    List the 56-test suite with thread/op counts and SC verdicts.
``show <test>``
    Pretty-print one litmus test.
``generate <test> [-o FILE]``
    Run the Assumption/Assertion Generators and emit SystemVerilog.
``verify <test> [--memory buggy|fixed] [--config Hybrid|Full_Proof]``
    End-to-end RTLCheck verification of one test.
``microarch <test>``
    Check-style µhb verification at the microarchitecture level.
``suite [--memory ...] [--config ...] [--jobs N] [--only TEST ...]``
    Verify the 56-test suite (or a subset) with per-test progress
    lines; ``--jobs N`` verifies tests in parallel worker processes.

Observability (``verify`` and ``suite``): ``--report FILE`` writes a
schema-versioned JSON run report (the machine-readable Figures 13/14;
written even when counterexamples make the command exit non-zero),
``--trace FILE`` writes a Chrome trace-event file loadable in
Perfetto, and ``--metrics`` prints the merged observability counters.
See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro import CONFIGS, RTLCheck, get_test, paper_suite
from repro.litmus import compile_test
from repro.memodel import sc_allowed
from repro.uhb import microarch_observable
from repro.uspec import multi_vscale_model
from repro.verifier.config import DEFAULT_SUITE_JOBS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory",
        choices=["buggy", "fixed"],
        default="fixed",
        help="Multi-V-scale memory variant (default: fixed)",
    )
    parser.add_argument(
        "--config",
        choices=sorted(CONFIGS),
        default="Full_Proof",
        help="verifier engine configuration (default: Full_Proof)",
    )
    parser.add_argument(
        "--explorer",
        choices=["graph", "per-property"],
        default="graph",
        help="explorer backend: shared reachability graph (default) or "
        "the per-property re-exploring explorer",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="write a schema-versioned JSON run report to FILE",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event (Perfetto) file to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged observability counters",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RTLCheck reproduction (MICRO 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 56-test suite")

    show = sub.add_parser("show", help="pretty-print one litmus test")
    show.add_argument("test")

    generate = sub.add_parser("generate", help="emit generated SVA")
    generate.add_argument("test")
    generate.add_argument("-o", "--output", help="write to file instead of stdout")
    generate.add_argument(
        "--with-design",
        action="store_true",
        help="emit the Verilog design together with the properties",
    )
    generate.add_argument(
        "--memory",
        choices=["buggy", "fixed"],
        default="fixed",
        help="memory variant for --with-design (default: fixed)",
    )

    verify = sub.add_parser("verify", help="verify one litmus test")
    verify.add_argument("test")
    _add_common(verify)
    verify.add_argument(
        "--no-cover-shortcut",
        action="store_true",
        help="always run the proof phase",
    )

    microarch = sub.add_parser("microarch", help="µhb-level verification")
    microarch.add_argument("test")

    lint = sub.add_parser("lint", help="check a µspec model's SVA synthesizability")
    lint.add_argument(
        "model",
        nargs="?",
        default="multi_vscale",
        help="bundled model name or path to a .uspec file",
    )

    suite = sub.add_parser("suite", help="verify the whole suite")
    _add_common(suite)
    suite.add_argument(
        "--jobs",
        type=int,
        default=DEFAULT_SUITE_JOBS,
        metavar="N",
        help="verify N tests in parallel worker processes (default: 1)",
    )
    suite.add_argument(
        "--only",
        nargs="+",
        metavar="TEST",
        help="restrict the run to these test names (e.g. CI smoke runs)",
    )
    return parser


def cmd_list(_args) -> int:
    print(f"{'name':13s} {'threads':>7s} {'ops':>4s} {'SC verdict':>11s}")
    for test in paper_suite():
        verdict = "allowed" if sc_allowed(test) else "forbidden"
        print(
            f"{test.name:13s} {test.num_threads:>7d} "
            f"{test.instruction_count():>4d} {verdict:>11s}"
        )
    return 0


def cmd_show(args) -> int:
    test = get_test(args.test)
    print(test.pretty())
    compiled = compile_test(test)
    print("\nCompiled programs:")
    for core, program in enumerate(compiled.programs):
        listing = "; ".join(str(i) for i in program)
        print(f"  core {core}: {listing}")
    return 0


def cmd_generate(args) -> int:
    generated = RTLCheck().generate(get_test(args.test))
    if args.with_design:
        from repro.vscale import emit_verification_bundle

        text = emit_verification_bundle(
            generated.compiled, generated.sva_text, args.memory
        )
    else:
        text = generated.sva_text
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(
            f"wrote {len(generated.assumptions)} assumptions and "
            f"{len(generated.assertions)} assertions to {args.output}"
        )
    else:
        print(text)
    return 0


def _wants_observability(args) -> bool:
    return bool(args.report or args.trace or args.metrics)


def _emit_observability(args, results, jobs=None) -> None:
    """Write the report/trace files and print counters as requested.

    Called on every exit path — a bug-finding run still produces its
    full report before the command returns non-zero.
    """
    from repro import obs

    if args.report:
        obs.write_report(
            args.report,
            obs.suite_report(
                results,
                config_name=args.config,
                memory_variant=args.memory,
                jobs=jobs,
            ),
        )
        print(f"wrote run report to {args.report}")
    if args.trace:
        obs.write_chrome_trace(
            args.trace, {name: r.obs for name, r in results.items()}
        )
        print(f"wrote Chrome trace to {args.trace}")
    if args.metrics:
        counters = obs.merge_counters(
            [r.obs or {} for r in results.values()]
        )
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name:40s} {counters[name]:.0f}")


def cmd_verify(args) -> int:
    rtlcheck = RTLCheck(
        config=CONFIGS[args.config],
        use_reach_graph=(args.explorer == "graph"),
        observe=_wants_observability(args),
    )
    result = rtlcheck.verify_test(
        get_test(args.test),
        memory_variant=args.memory,
        skip_cover_shortcut=args.no_cover_shortcut,
    )
    print(result.summary())
    for prop in result.properties:
        extra = f" (bound {prop.verdict.bound})" if prop.status == "bounded" else ""
        print(f"  {prop.name}: {prop.status}{extra}")
    _emit_observability(args, {result.test.name: result}, jobs=1)
    return 1 if result.bug_found else 0


def cmd_microarch(args) -> int:
    test = get_test(args.test)
    result = microarch_observable(multi_vscale_model(), test)
    print(result.summary())
    return 0


def cmd_lint(args) -> int:
    import os

    from repro.uspec import lint_model, lint_source
    from repro.uspec.model import load_model

    if os.path.exists(args.model):
        with open(args.model) as handle:
            report = lint_source(handle.read())
    else:
        report = lint_model(load_model(args.model))
    print(report.render())
    return 0 if report.synthesizable else 1


def cmd_suite(args) -> int:
    rtlcheck = RTLCheck(
        config=CONFIGS[args.config],
        use_reach_graph=(args.explorer == "graph"),
        observe=_wants_observability(args),
    )
    tests = paper_suite()
    if args.only:
        tests = [get_test(name) for name in args.only]
    total = len(tests)
    done = [0]

    def progress(result):
        done[0] += 1
        print(f"[{done[0]}/{total}] {result.summary()}", flush=True)

    results = rtlcheck.verify_suite(
        tests, memory_variant=args.memory, jobs=args.jobs, progress=progress
    )
    failures = sum(results[test.name].bug_found for test in tests)
    # Observability artifacts are written before the exit code is
    # decided, so bug-finding runs still produce their full report.
    _emit_observability(args, results, jobs=args.jobs)
    if failures:
        print(f"\n{failures} tests produced counterexamples")
    return 1 if failures else 0


COMMANDS = {
    "list": cmd_list,
    "show": cmd_show,
    "generate": cmd_generate,
    "verify": cmd_verify,
    "microarch": cmd_microarch,
    "lint": cmd_lint,
    "suite": cmd_suite,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
