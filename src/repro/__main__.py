"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    List the 56-test suite with thread/op counts and SC verdicts.
``show <test>``
    Pretty-print one litmus test.
``generate <test> [-o FILE]``
    Run the Assumption/Assertion Generators and emit SystemVerilog.
``verify <test> [--memory buggy|fixed] [--config Hybrid|Full_Proof]``
    End-to-end RTLCheck verification of one test.
``microarch <test>``
    Check-style µhb verification at the microarchitecture level.
``suite [--memory ...] [--config ...] [--jobs N] [--only TEST ...]``
    Verify the 56-test suite (or a subset) with per-test progress
    lines; ``--jobs N`` verifies tests in parallel worker processes.
``fuzz [--seed N] [--budget N] [--oracles ...] [--jobs N] [--long-programs]``
    Differential litmus fuzzing: generate seeded random tests and
    cross-check the operational, axiomatic, RTL-simulation, verifier,
    and sampled-trace layers against each other; discrepancies are
    shrunk to minimal reproducers (``--reproducers DIR`` writes them as
    replayable JSON artifacts).  ``--long-programs`` mixes in 8-16
    instruction-per-thread tests that only the trace oracle can judge.
    Exits non-zero iff a discrepancy was found.  See
    ``docs/difftest.md``.
``cache {stats,gc,clear}``
    Inspect and maintain the persistent verification cache: per-tier
    entry counts and sizes (``stats``), size-bounded LRU eviction
    (``gc --max-bytes N``), or full removal (``clear``).  See
    ``docs/caching.md``.
``coverage {report,diff,merge}``
    Inspect the persistent microarchitectural coverage database:
    closure report over every merged campaign (``report``), key-set
    diff of two coverage documents (``diff``), and offline merge of
    databases/reports (``merge``).  See ``docs/observability.md``.
``serve [--host H] [--port N] [--jobs N] [--cache-dir DIR]``
    Run the verification job server: accepts verify/suite/fuzz jobs as
    JSON over HTTP, dedupes identical requests via cache keys, shards
    suite work over a process pool, streams NDJSON progress, and
    resumes interrupted jobs on restart.  See ``docs/serving.md``.
``submit {suite,verify,fuzz} [--host H] [--port N] ...``
    Submit one job to a running server, stream its progress, and fetch
    the final report (the same schema-versioned document the local CLI
    writes).  Exit codes mirror the local commands.

Observability (``verify`` and ``suite``): ``--report FILE`` writes a
schema-versioned JSON run report (the machine-readable Figures 13/14;
written even when counterexamples make the command exit non-zero),
``--trace FILE`` writes a Chrome trace-event file loadable in
Perfetto, and ``--metrics`` prints the merged observability counters
and gauges.  ``--coverage`` additionally collects microarchitectural
coverage maps (reach-graph states/transitions, assumption firings,
litmus shapes; arbiter grant interleavings under ``fuzz``), prints the
closure summary, and — with ``--coverage-report FILE`` — writes the
JSON closure report.  ``fuzz --guided`` turns the coverage signal into
feedback: novel tests seed an energy-weighted mutation corpus.
See ``docs/observability.md``.

Caching (``verify``, ``suite``, ``fuzz``): verification artifacts are
memoized under ``--cache-dir`` (default ``$REPRO_CACHE_DIR``, else
``~/.cache/rtlcheck-repro``), making warm re-runs near-instant and
interrupted campaigns resumable; ``--no-cache`` computes everything
cold.  See ``docs/caching.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro import CONFIGS, RTLCheck, get_test, paper_suite
from repro.litmus import compile_test
from repro.memodel import sc_allowed
from repro.uhb import microarch_observable
from repro.uspec import multi_vscale_model
from repro.verifier.config import DEFAULT_SUITE_JOBS


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="verification cache directory (default: $REPRO_CACHE_DIR, "
        "else ~/.cache/rtlcheck-repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the verification cache for this run",
    )


def _cache_from_args(args):
    """The :class:`VerificationCache` selected by the common cache
    flags, or ``None`` under ``--no-cache``."""
    if args.no_cache:
        return None
    from repro.cache import VerificationCache

    return VerificationCache(args.cache_dir)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory",
        choices=["buggy", "fixed"],
        default="fixed",
        help="Multi-V-scale memory variant (default: fixed)",
    )
    parser.add_argument(
        "--config",
        choices=sorted(CONFIGS),
        default="Full_Proof",
        help="verifier engine configuration (default: Full_Proof)",
    )
    parser.add_argument(
        "--explorer",
        choices=["graph", "per-property"],
        default="graph",
        help="explorer backend: shared reachability graph (default) or "
        "the per-property re-exploring explorer",
    )
    parser.add_argument(
        "--state-backend",
        choices=["array", "kernel", "dict"],
        default="array",
        help="design snapshot representation: interned flat slot "
        "vectors with batched expansion (default), compiled per-design "
        "step kernels over the same vectors ('kernel'), or the "
        "original nested-tuple snapshots (the equivalence reference)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="write a schema-versioned JSON run report to FILE",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event (Perfetto) file to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged observability counters and gauges",
    )
    _add_coverage_flags(parser)
    _add_cache_flags(parser)


def _add_coverage_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--coverage",
        action="store_true",
        help="collect microarchitectural coverage maps and print the "
        "closure summary",
    )
    parser.add_argument(
        "--coverage-report",
        metavar="FILE",
        help="write the JSON closure report to FILE (implies --coverage)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RTLCheck reproduction (MICRO 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 56-test suite")

    show = sub.add_parser("show", help="pretty-print one litmus test")
    show.add_argument("test")

    generate = sub.add_parser("generate", help="emit generated SVA")
    generate.add_argument("test")
    generate.add_argument("-o", "--output", help="write to file instead of stdout")
    generate.add_argument(
        "--with-design",
        action="store_true",
        help="emit the Verilog design together with the properties",
    )
    generate.add_argument(
        "--memory",
        choices=["buggy", "fixed"],
        default="fixed",
        help="memory variant for --with-design (default: fixed)",
    )

    verify = sub.add_parser("verify", help="verify one litmus test")
    verify.add_argument("test")
    _add_common(verify)
    verify.add_argument(
        "--no-cover-shortcut",
        action="store_true",
        help="always run the proof phase",
    )

    microarch = sub.add_parser("microarch", help="µhb-level verification")
    microarch.add_argument("test")

    lint = sub.add_parser("lint", help="check a µspec model's SVA synthesizability")
    lint.add_argument(
        "model",
        nargs="?",
        default="multi_vscale",
        help="bundled model name or path to a .uspec file",
    )

    suite = sub.add_parser("suite", help="verify the whole suite")
    _add_common(suite)
    suite.add_argument(
        "--jobs",
        type=int,
        default=DEFAULT_SUITE_JOBS,
        metavar="N",
        help="verify N tests in parallel worker processes (default: 1)",
    )
    suite.add_argument(
        "--only",
        nargs="+",
        metavar="TEST",
        help="restrict the run to these test names (e.g. CI smoke runs)",
    )

    from repro.difftest import ORACLE_NAMES

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing across the semantics layers"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; together with --budget it fully determines "
        "the generated tests and minimized reproducers (default: 0)",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=100,
        metavar="N",
        help="number of tests to generate and cross-check (default: 100)",
    )
    fuzz.add_argument(
        "--oracles",
        nargs="+",
        choices=list(ORACLE_NAMES),
        default=list(ORACLE_NAMES),
        metavar="ORACLE",
        help=f"oracle layers to run (default: all of {list(ORACLE_NAMES)})",
    )
    fuzz.add_argument(
        "--memory",
        choices=["buggy", "fixed"],
        default="fixed",
        help="Multi-V-scale memory variant under test (default: fixed)",
    )
    fuzz.add_argument(
        "--long-programs",
        action="store_true",
        help="mix in long-program tests (8-16 instructions per thread); "
        "requires the trace oracle, which is the only layer that can "
        "evaluate them",
    )
    fuzz.add_argument(
        "--trace-samples",
        type=int,
        default=None,
        metavar="N",
        help="RTL executions sampled per test by the trace oracle "
        "(default: 8)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=DEFAULT_SUITE_JOBS,
        metavar="N",
        help="evaluate N tests in parallel worker processes; results "
        "are independent of this value (default: 1)",
    )
    fuzz.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="RTL enumeration state budget per test (comparisons that "
        "trip it are skipped and counted, not reported)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging minimization of discrepancies",
    )
    fuzz.add_argument(
        "--shrink-limit",
        type=int,
        default=5,
        metavar="N",
        help="minimize at most N discrepancies (default: 5)",
    )
    fuzz.add_argument(
        "--report",
        metavar="FILE",
        help="write the schema-versioned JSON campaign report to FILE",
    )
    fuzz.add_argument(
        "--reproducers",
        metavar="DIR",
        help="write one replayable JSON artifact per discrepancy to DIR",
    )
    fuzz.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event (Perfetto) file to FILE",
    )
    fuzz.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged observability counters and gauges",
    )
    _add_coverage_flags(fuzz)
    fuzz.add_argument(
        "--guided",
        action="store_true",
        help="coverage-guided seed scheduling: tests that reach novel "
        "coverage enter an energy-weighted mutation corpus "
        "(implies --coverage)",
    )
    fuzz.add_argument(
        "--coverage-db",
        metavar="PATH",
        help="coverage database to merge the campaign into (default: "
        "<cache root>/coverage/coverage.json when caching is on)",
    )
    fuzz.add_argument(
        "--state-backend",
        choices=["array", "kernel", "dict"],
        default="array",
        help="design snapshot representation the RTL-touching oracles "
        "use (backends are verdict-equivalent; reports are "
        "byte-identical across them)",
    )
    _add_cache_flags(fuzz)

    cache = sub.add_parser(
        "cache", help="inspect and maintain the verification cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="per-tier entry counts and byte totals"
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a size bound"
    )
    cache_gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        metavar="N",
        help="evict LRU entries until the store fits in N bytes",
    )
    cache_clear = cache_sub.add_parser(
        "clear", help="remove every cache entry and checkpoint manifest"
    )
    for sub_parser in (cache_stats, cache_gc, cache_clear):
        sub_parser.add_argument(
            "--cache-dir",
            metavar="DIR",
            help="verification cache directory (default: $REPRO_CACHE_DIR, "
            "else ~/.cache/rtlcheck-repro)",
        )

    coverage = sub.add_parser(
        "coverage", help="inspect the persistent coverage database"
    )
    coverage_sub = coverage.add_subparsers(dest="coverage_command", required=True)
    cov_report = coverage_sub.add_parser(
        "report", help="closure report over every merged campaign"
    )
    cov_diff = coverage_sub.add_parser(
        "diff", help="per-domain key-set diff of two coverage documents"
    )
    cov_diff.add_argument("base", help="baseline coverage document")
    cov_diff.add_argument("other", help="coverage document to compare")
    cov_merge = coverage_sub.add_parser(
        "merge", help="merge coverage documents into a database"
    )
    cov_merge.add_argument(
        "inputs", nargs="+", metavar="FILE", help="coverage documents to merge"
    )
    cov_merge.add_argument(
        "--into",
        metavar="PATH",
        help="destination database (default: the --db / cache-derived path)",
    )
    for sub_parser in (cov_report, cov_diff, cov_merge):
        sub_parser.add_argument(
            "--db",
            metavar="PATH",
            help="coverage database path (default: "
            "<cache root>/coverage/coverage.json)",
        )
        sub_parser.add_argument(
            "--cache-dir",
            metavar="DIR",
            help="cache directory the default database path derives from",
        )
        sub_parser.add_argument(
            "-o",
            "--output",
            metavar="FILE",
            help="also write the JSON document to FILE",
        )

    from repro.serve.app import DEFAULT_PORT

    serve = sub.add_parser(
        "serve", help="run the verification job server"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1; the server is "
        "unauthenticated, so bind non-loopback addresses only on "
        "trusted networks)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        metavar="N",
        help=f"TCP port (default: {DEFAULT_PORT}; 0 picks a free port)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="size of the shared worker pool suite jobs shard over "
        "(default: 2)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="bounded per-unit retries after a worker crash (default: 1)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="verification cache directory the server keys, shards, and "
        "resumes against (default: $REPRO_CACHE_DIR, else "
        "~/.cache/rtlcheck-repro)",
    )

    submit = sub.add_parser(
        "submit", help="submit one job to a running job server"
    )
    submit_sub = submit.add_subparsers(dest="job_kind", required=True)
    submit_suite = submit_sub.add_parser(
        "suite", help="submit a suite verification job"
    )
    submit_suite.add_argument(
        "--only",
        nargs="+",
        metavar="TEST",
        help="restrict the job to these test names (default: all 56)",
    )
    submit_verify = submit_sub.add_parser(
        "verify", help="submit a one-test verification job"
    )
    submit_verify.add_argument("test")
    for sub_parser in (submit_suite, submit_verify):
        sub_parser.add_argument(
            "--memory",
            choices=["buggy", "fixed"],
            default="fixed",
            help="Multi-V-scale memory variant (default: fixed)",
        )
        sub_parser.add_argument(
            "--config",
            choices=sorted(CONFIGS),
            default="Full_Proof",
            help="verifier engine configuration (default: Full_Proof)",
        )
        sub_parser.add_argument(
            "--explorer",
            choices=["graph", "per-property"],
            default="graph",
            help="explorer backend (default: graph)",
        )
        sub_parser.add_argument(
            "--observe",
            action="store_true",
            help="run the job with observability recording, matching a "
            "local run that passes --report/--trace/--metrics (part of "
            "the job key)",
        )
    submit_fuzz = submit_sub.add_parser(
        "fuzz", help="submit a differential fuzz campaign job"
    )
    submit_fuzz.add_argument("--seed", type=int, default=0)
    submit_fuzz.add_argument("--budget", type=int, default=100, metavar="N")
    submit_fuzz.add_argument(
        "--oracles",
        nargs="+",
        choices=list(ORACLE_NAMES),
        default=list(ORACLE_NAMES),
        metavar="ORACLE",
    )
    submit_fuzz.add_argument(
        "--memory", choices=["buggy", "fixed"], default="fixed"
    )
    submit_fuzz.add_argument("--long-programs", action="store_true")
    submit_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes the server's fuzz campaign uses (results "
        "are independent of this value and it is not part of the job "
        "key)",
    )
    for sub_parser in (submit_suite, submit_verify, submit_fuzz):
        sub_parser.add_argument(
            "--state-backend",
            choices=["array", "kernel", "dict"],
            default="array",
            help="design snapshot representation (verdict-equivalent; "
            "part of the job key)",
        )
        sub_parser.add_argument(
            "--host", default="127.0.0.1", help="job server address"
        )
        sub_parser.add_argument(
            "--port",
            type=int,
            default=DEFAULT_PORT,
            metavar="N",
            help=f"job server port (default: {DEFAULT_PORT})",
        )
        sub_parser.add_argument(
            "--timeout",
            type=float,
            default=600.0,
            metavar="SECONDS",
            help="overall client timeout (default: 600)",
        )
        sub_parser.add_argument(
            "--report",
            metavar="FILE",
            help="write the job's final JSON report to FILE",
        )
        sub_parser.add_argument(
            "--events",
            metavar="FILE",
            help="tee the streamed NDJSON progress events to FILE",
        )
        sub_parser.add_argument(
            "--quiet",
            action="store_true",
            help="suppress per-event progress lines",
        )
    return parser


def cmd_list(_args) -> int:
    print(f"{'name':13s} {'threads':>7s} {'ops':>4s} {'SC verdict':>11s}")
    for test in paper_suite():
        verdict = "allowed" if sc_allowed(test) else "forbidden"
        print(
            f"{test.name:13s} {test.num_threads:>7d} "
            f"{test.instruction_count():>4d} {verdict:>11s}"
        )
    return 0


def cmd_show(args) -> int:
    test = get_test(args.test)
    print(test.pretty())
    compiled = compile_test(test)
    print("\nCompiled programs:")
    for core, program in enumerate(compiled.programs):
        listing = "; ".join(str(i) for i in program)
        print(f"  core {core}: {listing}")
    return 0


def cmd_generate(args) -> int:
    generated = RTLCheck().generate(get_test(args.test))
    if args.with_design:
        from repro.vscale import emit_verification_bundle

        text = emit_verification_bundle(
            generated.compiled, generated.sva_text, args.memory
        )
    else:
        text = generated.sva_text
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(
            f"wrote {len(generated.assumptions)} assumptions and "
            f"{len(generated.assertions)} assertions to {args.output}"
        )
    else:
        print(text)
    return 0


def _wants_observability(args) -> bool:
    return bool(args.report or args.trace or args.metrics)


def _wants_coverage(args) -> bool:
    return bool(
        getattr(args, "coverage", False)
        or getattr(args, "coverage_report", None)
        or getattr(args, "guided", False)
    )


def _emit_observability(args, results, jobs=None, cache=None):
    """Write the report/trace files and print counters as requested.

    Called on every exit path — a bug-finding run still produces its
    full report before the command returns non-zero.  ``cache``, when
    given, contributes its statistics snapshot as the report's
    top-level ``"cache"`` key and a ``--metrics`` section.  Returns the
    closure report (or ``None``) so callers can persist it.
    """
    from repro import obs

    states = [r.obs or {} for r in results.values()]
    closure = None
    if _wants_coverage(args):
        coverage_map = obs.merge_states(states).coverage
        if coverage_map is None:
            coverage_map = obs.CoverageMap()
        closure = obs.closure_report(coverage_map, tests=len(results))
    if args.report:
        obs.write_report(
            args.report,
            obs.suite_report(
                results,
                config_name=args.config,
                memory_variant=args.memory,
                jobs=jobs,
                cache=None if cache is None else cache.stats.snapshot(),
                coverage=closure,
            ),
        )
        print(f"wrote run report to {args.report}")
    if args.trace:
        obs.write_chrome_trace(
            args.trace, {name: r.obs for name, r in results.items()}
        )
        print(f"wrote Chrome trace to {args.trace}")
    if args.metrics:
        counters = obs.merge_counters(states)
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name:40s} {counters[name]:.0f}")
        gauges = obs.merge_gauges(states)
        if gauges:
            print("\ngauges:")
            for name in sorted(gauges):
                print(f"  {name:40s} {gauges[name]:g}")
        if cache is not None:
            stats = cache.stats.snapshot()
            print("\ncache counters:")
            for name in sorted(stats):
                print(f"  {name:40s} {stats[name]:.0f}")
    if closure is not None:
        print()
        print(obs.render_closure(closure))
        if args.coverage_report:
            from repro.obs.coverage import write_coverage_json

            write_coverage_json(args.coverage_report, closure)
            print(f"wrote coverage report to {args.coverage_report}")
    return closure


def cmd_verify(args) -> int:
    cache = _cache_from_args(args)
    rtlcheck = RTLCheck(
        config=CONFIGS[args.config],
        use_reach_graph=(args.explorer == "graph"),
        observe=_wants_observability(args),
        coverage=_wants_coverage(args),
        cache=cache,
        state_backend=args.state_backend,
    )
    result = rtlcheck.verify_test(
        get_test(args.test),
        memory_variant=args.memory,
        skip_cover_shortcut=args.no_cover_shortcut,
    )
    print(result.summary())
    for prop in result.properties:
        extra = f" (bound {prop.verdict.bound})" if prop.status == "bounded" else ""
        print(f"  {prop.name}: {prop.status}{extra}")
    if cache is not None:
        print(f"cache: {cache.stats.summary()}")
    _emit_observability(args, {result.test.name: result}, jobs=1, cache=cache)
    return 1 if result.bug_found else 0


def cmd_microarch(args) -> int:
    test = get_test(args.test)
    result = microarch_observable(multi_vscale_model(), test)
    print(result.summary())
    return 0


def cmd_lint(args) -> int:
    import os

    from repro.uspec import lint_model, lint_source
    from repro.uspec.model import load_model

    if os.path.exists(args.model):
        with open(args.model) as handle:
            report = lint_source(handle.read())
    else:
        report = lint_model(load_model(args.model))
    print(report.render())
    return 0 if report.synthesizable else 1


def cmd_suite(args) -> int:
    cache = _cache_from_args(args)
    rtlcheck = RTLCheck(
        config=CONFIGS[args.config],
        use_reach_graph=(args.explorer == "graph"),
        observe=_wants_observability(args),
        coverage=_wants_coverage(args),
        cache=cache,
        state_backend=args.state_backend,
    )
    tests = paper_suite()
    if args.only:
        tests = [get_test(name) for name in args.only]
    total = len(tests)
    done = [0]

    def progress(result):
        done[0] += 1
        print(f"[{done[0]}/{total}] {result.summary()}", flush=True)

    results = rtlcheck.verify_suite(
        tests, memory_variant=args.memory, jobs=args.jobs, progress=progress
    )
    failures = sum(results[test.name].bug_found for test in tests)
    if cache is not None:
        print(f"cache: {cache.stats.summary()}")
    # Observability artifacts are written before the exit code is
    # decided, so bug-finding runs still produce their full report.
    closure = _emit_observability(args, results, jobs=args.jobs, cache=cache)
    if closure is not None and cache is not None:
        from repro.obs.coverage import (
            CoverageDB,
            CoverageMap,
            default_coverage_db_path,
        )

        db = CoverageDB(default_coverage_db_path(args.cache_dir))
        db.merge(
            CoverageMap.from_state(closure["coverage"]),
            campaign={
                "command": "suite",
                "config": args.config,
                "memory_variant": args.memory,
                "tests": len(results),
            },
        )
        print(f"coverage database updated: {db.path}")
    if failures:
        print(f"\n{failures} tests produced counterexamples")
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    from repro import obs
    from repro.difftest import (
        FuzzConfig,
        run_fuzz,
        validate_fuzz_report,
        write_reproducer,
    )
    from repro.difftest.oracles import DEFAULT_TRACE_SAMPLES
    from repro.verifier.outcomes import DEFAULT_MAX_STATES

    from repro.cache import default_cache_dir

    observe = bool(args.trace or args.metrics)
    coverage = _wants_coverage(args)
    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        oracles=tuple(args.oracles),
        memory_variant=args.memory,
        jobs=args.jobs,
        max_states=args.max_states or DEFAULT_MAX_STATES,
        long_programs=args.long_programs,
        trace_samples=args.trace_samples or DEFAULT_TRACE_SAMPLES,
        shrink=not args.no_shrink,
        shrink_limit=args.shrink_limit,
        observe=observe,
        cache_dir=None
        if args.no_cache
        else (args.cache_dir or default_cache_dir()),
        coverage=coverage,
        guided=args.guided,
        coverage_db=args.coverage_db,
        state_backend=args.state_backend,
    )
    total = config.budget
    done = [0]

    def progress(_index, name, new=None):
        done[0] += 1
        if done[0] % 25 == 0 or done[0] == total:
            line = f"[{done[0]}/{total}] cross-checked through {name}"
            if new is not None:
                # Cumulative novel coverage keys — the live saturation
                # signal of a --coverage campaign.
                line += f" (+{new} new)"
            print(line, flush=True)

    recorder = obs.TraceRecorder() if observe else obs.NULL_RECORDER
    with obs.use_recorder(recorder):
        result = run_fuzz(config, progress=progress)

    print(
        f"\nfuzz seed={config.seed} budget={config.budget} "
        f"memory={config.memory_variant}: {result.tests_run} tests, "
        f"{len(result.discrepancies)} discrepancies, "
        f"{len(result.oracle_errors)} oracle errors, "
        f"skipped={result.skipped or '{}'} "
        f"({result.wall_seconds:.1f}s)"
    )
    if config.cache_dir is not None:
        from repro.cache import CacheStats

        stats = CacheStats()
        stats.merge(result.cache_stats)
        resumed = f", resumed {result.resumed}/{config.budget}" if result.resumed else ""
        print(f"cache: {stats.summary()}{resumed}")
    for entry in result.discrepancies:
        line = f"  DISCREPANCY {entry.discrepancy.summary()}"
        if entry.minimized is not None:
            line += (
                f" -> minimized to {entry.minimized.instruction_count()} "
                f"instruction(s)"
            )
        print(line)
    shown = [e for e in result.discrepancies if e.minimized is not None]
    if shown:
        print("\nFirst minimized reproducer:")
        print(shown[0].minimized.pretty())

    report = result.report()
    problems = validate_fuzz_report(report)
    if problems:
        # A malformed report is a difftest bug; surface it loudly.
        for problem in problems:
            print(f"REPORT INVALID: {problem}", file=sys.stderr)
        return 2
    if args.report:
        obs.write_report(args.report, report)
        print(f"wrote fuzz report to {args.report}")
    if args.reproducers:
        for entry in result.discrepancies:
            path = write_reproducer(args.reproducers, entry)
            print(f"wrote reproducer {path}")
    if args.trace:
        obs.write_chrome_trace(args.trace, {"fuzz": recorder.to_state()})
        print(f"wrote Chrome trace to {args.trace}")
    if args.metrics:
        print("\ncounters:")
        for name in sorted(recorder.counters):
            print(f"  {name:40s} {recorder.counters[name]:.0f}")
        if recorder.gauges:
            print("\ngauges:")
            for name in sorted(recorder.gauges):
                print(f"  {name:40s} {recorder.gauges[name]:g}")
    if "coverage" in report:
        print()
        print(obs.render_closure(report["coverage"]))
        if args.coverage_report:
            from repro.obs.coverage import write_coverage_json

            write_coverage_json(args.coverage_report, report["coverage"])
            print(f"wrote coverage report to {args.coverage_report}")
    return 1 if result.discrepancies else 0


def cmd_cache(args) -> int:
    from repro.cache import VerificationCache, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    cache = VerificationCache(root)
    if args.cache_command == "stats":
        usage = cache.usage()
        print(f"cache directory: {root}")
        print(f"{'tier':10s} {'entries':>8s} {'bytes':>12s}")
        for tier in ("verdict", "reach", "nfa", "oracle"):
            row = usage[tier]
            print(f"{tier:10s} {row['entries']:>8d} {row['bytes']:>12d}")
        total = usage["total"]
        print(f"{'total':10s} {total['entries']:>8d} {total['bytes']:>12d}")
        checkpoints = cache.root / "checkpoints"
        manifests = (
            len([p for p in checkpoints.glob("*.json")])
            if checkpoints.is_dir()
            else 0
        )
        print(f"checkpoint manifests: {manifests}")
    elif args.cache_command == "gc":
        evicted = cache.gc(args.max_bytes)
        total = cache.usage()["total"]
        print(
            f"evicted {evicted} entries; {total['entries']} entries "
            f"({total['bytes']} bytes) remain"
        )
    elif args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {root}")
    return 0


def _coverage_state_from(path: str):
    """The per-domain coverage state carried by any coverage-bearing
    JSON document: a coverage database, a standalone closure report, or
    a suite/fuzz run report with an embedded ``coverage`` section.
    Returns ``None`` when the document is none of those."""
    import json

    from repro.obs.coverage import COVERAGE_DB_KIND, COVERAGE_REPORT_KIND

    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        return None
    kind = document.get("kind")
    if kind == COVERAGE_DB_KIND:
        return document.get("domains", {})
    if kind == COVERAGE_REPORT_KIND:
        return document.get("coverage", {})
    embedded = document.get("coverage")
    if (
        isinstance(embedded, dict)
        and embedded.get("kind") == COVERAGE_REPORT_KIND
    ):
        return embedded.get("coverage", {})
    return None


def cmd_coverage(args) -> int:
    from repro.obs.coverage import (
        CoverageDB,
        CoverageMap,
        closure_report,
        coverage_diff,
        default_coverage_db_path,
        render_closure,
        render_diff,
        write_coverage_json,
    )

    def load_state(path):
        try:
            state = _coverage_state_from(path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            raise SystemExit(2)
        if state is None:
            print(
                f"error: {path} is not a coverage database or report",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return state

    db_path = args.db or default_coverage_db_path(args.cache_dir)

    if args.coverage_command == "report":
        db = CoverageDB(db_path)
        document = db.load()
        if db.reset_reason:
            print(
                f"warning: coverage database reset ({db.reset_reason})",
                file=sys.stderr,
            )
        campaigns = document.get("campaigns", [])
        tests = sum(int(c.get("tests", 0)) for c in campaigns)
        report = closure_report(
            CoverageMap.from_state(document.get("domains", {})),
            tests=tests or None,
        )
        print(f"coverage database: {db.path}")
        print(
            f"campaigns merged: {len(campaigns)}; "
            f"corpus entries: {len(document.get('corpus', []))}"
        )
        print(render_closure(report))
        if args.output:
            write_coverage_json(args.output, report)
            print(f"wrote closure report to {args.output}")
        return 0

    if args.coverage_command == "diff":
        diff = coverage_diff(load_state(args.base), load_state(args.other))
        print(render_diff(diff))
        if args.output:
            write_coverage_json(args.output, diff)
            print(f"wrote coverage diff to {args.output}")
        return 0

    # merge
    merged = CoverageMap()
    for path in args.inputs:
        merged.merge_state(load_state(path))
    db = CoverageDB(args.into or db_path)
    document = db.merge(
        merged, campaign={"command": "merge", "inputs": len(args.inputs)}
    )
    total = CoverageMap.from_state(document["domains"]).total_unique()
    print(
        f"merged {len(args.inputs)} document(s) into {db.path}: "
        f"{total} unique keys"
    )
    if args.output:
        write_coverage_json(args.output, document)
        print(f"wrote merged database to {args.output}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve.app import JobServer

    server = JobServer(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        host=args.host,
        port=args.port,
        retries=args.retries,
    )

    async def main():
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(cache: {server.cache_dir}, pool: {server.jobs} workers)",
            flush=True,
        )
        resumed = server.counters["resumed_jobs"]
        if resumed:
            print(f"resumed {resumed} interrupted job(s)", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\ninterrupted; unfinished jobs resume on the next start")
    return 0


def cmd_submit(args) -> int:
    import json

    from repro.serve.client import ServeClient, ServeError

    if args.job_kind == "fuzz":
        spec = {
            "kind": "fuzz",
            "params": {
                "seed": args.seed,
                "budget": args.budget,
                "oracles": list(args.oracles),
                "memory_variant": args.memory,
                "long_programs": args.long_programs,
                "state_backend": args.state_backend,
                "jobs": args.jobs,
            },
        }
    else:
        params = {
            "memory_variant": args.memory,
            "config": args.config,
            "explorer": args.explorer,
            "state_backend": args.state_backend,
            "observe": args.observe,
        }
        if args.job_kind == "verify":
            spec = {"kind": "verify", "params": {**params, "test": args.test}}
        else:
            if args.only:
                params["tests"] = list(args.only)
            spec = {"kind": "suite", "params": params}

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    events_file = open(args.events, "w") if args.events else None

    def on_event(event):
        if events_file is not None:
            events_file.write(json.dumps(event, sort_keys=True) + "\n")
        if args.quiet:
            return
        kind = event["event"]
        if kind == "unit":
            cached = " (cached)" if event["cached"] else ""
            print(f"  {event['summary']}{cached}", flush=True)
        elif kind == "progress":
            index = event["index"] + 1
            if index % 25 == 0:
                print(
                    f"  [{index}] cross-checked through {event['test']}",
                    flush=True,
                )
        elif kind == "failed":
            print(f"  FAILED: {event['error']}", flush=True)

    try:
        submission = client.submit(spec)
        print(
            f"job {submission['job'][:16]}... "
            f"[{submission['source']}] state={submission['state']}"
        )
        key = submission["job"]
        if submission["state"] not in ("done", "failed"):
            for event in client.events(key):
                on_event(event)
        final = client.wait(key, timeout=args.timeout)
        if final["state"] == "failed":
            print(f"job failed: {final.get('error')}", file=sys.stderr)
            return 2
        report = client.report(key)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if events_file is not None:
            events_file.close()

    stats = final.get("stats", {})
    if report["kind"] == "rtlcheck-run-report":
        aggregates = report["aggregates"]
        print(
            f"suite job done [{final['source']}]: "
            f"{aggregates['num_tests']} tests, "
            f"{aggregates['bugs_found']} with counterexamples, "
            f"{aggregates['proven_fraction']:.0%} properties proven"
        )
        failures = aggregates["bugs_found"]
    else:
        print(
            f"fuzz job done [{final['source']}]: "
            f"{report['tests_run']} tests, "
            f"{report['discrepancy_count']} discrepancies"
        )
        failures = report["discrepancy_count"]
    if stats.get("resumed"):
        print(f"resumed {stats['resumed']} unit(s) from a prior run")
    if args.report:
        from repro import obs

        obs.write_report(args.report, report)
        print(f"wrote job report to {args.report}")
    return 1 if failures else 0


COMMANDS = {
    "list": cmd_list,
    "show": cmd_show,
    "generate": cmd_generate,
    "verify": cmd_verify,
    "microarch": cmd_microarch,
    "lint": cmd_lint,
    "suite": cmd_suite,
    "fuzz": cmd_fuzz,
    "cache": cmd_cache,
    "coverage": cmd_coverage,
    "serve": cmd_serve,
    "submit": cmd_submit,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
