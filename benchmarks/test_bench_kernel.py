"""Benchmark: compiled per-design step kernels vs the array interpreter.

The kernel backend keeps the array backend's interned slot vectors but
replaces the interpreted restore/eval/tick protocol with a per-design
compiled step: a closure-compiled straight-line function over the flat
slot vector, a fused compiled assumption check for graph expansion, and
a memoized per-(state, first) transition replay for random-schedule
simulation.

Two workloads, kernel vs array, with identical graphs/reports asserted
so the speedup is a pure execution-strategy win:

* **ReachGraph build** over the full 56-test suite, measured twice:
  a *cold* pass that pays every kernel compilation, and a *warm* pass
  riding the process-global compile caches (what any campaign that
  touches a design shape more than once sees).  The warm structural
  ceiling is modest (~1.7x over 56 small graphs, ~2.5x on the larger
  bench-gate shapes): per-node frame dicts, vector interning, and
  graph bookkeeping all survive compilation, so the compiled step only
  removes the eval/tick interpreter.  The issue's 10x reachgraph
  target is not reachable on this workload without changing what the
  graph records; ``docs/performance.md`` has the breakdown.
* **random-schedule simulation** — the memoized kernel path replays
  previously seen (state, first) transitions without re-stepping,
  which is where the order-of-magnitude win lives (>10x measured).
"""

import time

from conftest import save_table

from repro.litmus import compile_test
from repro.mapping import MultiVScaleProgramMapping
from repro.sva import AssumptionChecker
from repro.verifier.reach import ReachGraph
from repro.verifier.simulation import simulate_check
from repro.vscale.soc import MultiVScale

REACH_WARM_SPEEDUP_FLOOR = 1.3
SIM_SPEEDUP_FLOOR = 8.0
SIM_TESTS = ("mp", "iwp24")
SIM_SCHEDULES = 600


def _build(compiled, assumptions, backend):
    design = MultiVScale(compiled, "fixed", state_backend=backend)
    graph = ReachGraph(design, AssumptionChecker(assumptions))
    frontier = [graph.root]
    seen = {graph.root}
    while frontier:
        node = frontier.pop()
        for _index, _inputs, _frame, child in graph.live_successors(node):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return graph, design


def test_kernel_backend_speedup(suite, results_dir):
    compiled_tests = [(test.name, compile_test(test)) for test in suite]
    assumption_sets = {
        name: MultiVScaleProgramMapping(compiled).all_assumptions()
        for name, compiled in compiled_tests
    }

    reach_totals = {}
    reach_stats = {}
    for backend in ("array", "kernel"):
        for phase in ("cold", "warm"):
            seconds = 0.0
            nodes = 0
            transitions = 0
            for name, compiled in compiled_tests:
                start = time.perf_counter()
                graph, _design = _build(
                    compiled, assumption_sets[name], backend
                )
                seconds += time.perf_counter() - start
                nodes += graph.num_nodes
                transitions += graph.sim_transitions
            reach_totals[(backend, phase)] = seconds
            reach_stats[backend] = (nodes, transitions)

    assert reach_stats["kernel"] == reach_stats["array"]

    sim_totals = {}
    sim_reports = {}
    for backend in ("array", "kernel"):
        seconds = 0.0
        reports = []
        for name, compiled in compiled_tests:
            if name not in SIM_TESTS:
                continue
            mapping = MultiVScaleProgramMapping(compiled)
            design = MultiVScale(compiled, "fixed", state_backend=backend)
            start = time.perf_counter()
            report = simulate_check(
                design,
                mapping.all_assumptions(),
                [],
                num_schedules=SIM_SCHEDULES,
                max_cycles=60,
            )
            seconds += time.perf_counter() - start
            reports.append(
                (report.schedules_run, report.cycles_simulated,
                 report.violations)
            )
        sim_totals[backend] = seconds
        sim_reports[backend] = reports

    assert sim_reports["kernel"] == sim_reports["array"]

    cold_speedup = (
        reach_totals[("array", "cold")] / reach_totals[("kernel", "cold")]
    )
    warm_speedup = (
        reach_totals[("array", "warm")] / reach_totals[("kernel", "warm")]
    )
    sim_speedup = sim_totals["array"] / sim_totals["kernel"]
    nodes, transitions = reach_stats["kernel"]
    lines = [
        "Compiled step kernels: kernel backend vs array interpreter",
        "",
        "ReachGraph build, 56 tests, fixed design:",
        f"{'backend':14s} {'cold':>8s} {'warm':>8s}",
        f"{'array':14s} {reach_totals[('array', 'cold')]:>7.2f}s"
        f" {reach_totals[('array', 'warm')]:>7.2f}s",
        f"{'kernel':14s} {reach_totals[('kernel', 'cold')]:>7.2f}s"
        f" {reach_totals[('kernel', 'warm')]:>7.2f}s",
        f"cold speedup: {cold_speedup:.2f}x (56 one-shot kernel compiles)",
        f"warm speedup: {warm_speedup:.2f}x "
        f"(floor: {REACH_WARM_SPEEDUP_FLOOR:.1f}x; compile caches hot)",
        f"graph nodes (identical both backends): {nodes}",
        f"logical transitions (identical both backends): {transitions}",
        "",
        f"Random-schedule simulation, {SIM_SCHEDULES} schedules x "
        f"{len(SIM_TESTS)} tests:",
        f"{'backend':14s} {'wall':>8s}",
        f"{'array':14s} {sim_totals['array']:>7.2f}s",
        f"{'kernel':14s} {sim_totals['kernel']:>7.2f}s",
        f"speedup: {sim_speedup:.2f}x (floor: {SIM_SPEEDUP_FLOOR:.0f}x)",
        "",
        "Graph builds keep per-node frame dicts, interning, and graph",
        "bookkeeping on both backends, so compilation only removes the",
        "eval/tick interpreter — a structural ceiling of roughly 2x on",
        "these graph sizes (see docs/performance.md).  Simulation",
        "additionally memoizes each (state, first) transition, replaying",
        "revisited states without re-stepping: that is where the",
        "order-of-magnitude win lives.",
    ]
    save_table(results_dir, "kernel.txt", "\n".join(lines))

    assert warm_speedup >= REACH_WARM_SPEEDUP_FLOOR, (
        f"kernel warm reachgraph speedup {warm_speedup:.2f}x below floor"
    )
    assert sim_speedup >= SIM_SPEEDUP_FLOOR, (
        f"kernel simulation speedup {sim_speedup:.2f}x below floor"
    )
