"""Benchmark: persistent verification cache, cold vs warm suite run.

Runs the full 56-test suite twice through ``verify_suite`` (single
process, same on-disk cache directory): the first run computes and
stores every verdict, the second must hit the verdict tier for all 56
tests and replay them without touching the verifier.  The acceptance
bar is a >= 5x wall-time improvement with byte-identical verdicts.
"""

import json
import time

from conftest import save_table

from repro import RTLCheck
from repro.cache import VerificationCache

SPEEDUP_FLOOR = 5.0


def test_cache_warm_suite_speedup(suite, results_dir, tmp_path):
    root = tmp_path / "cache"

    cold_cache = VerificationCache(root)
    start = time.perf_counter()
    cold_results = RTLCheck(cache=cold_cache).verify_suite(suite, jobs=1)
    cold_seconds = time.perf_counter() - start
    assert cold_cache.stats.get("cache.verdict.hits") == 0

    # A fresh process would build a fresh VerificationCache over the
    # same directory; model that with a new instance (zeroed stats).
    warm_cache = VerificationCache(root)
    start = time.perf_counter()
    warm_results = RTLCheck(cache=warm_cache).verify_suite(suite, jobs=1)
    warm_seconds = time.perf_counter() - start

    hits = warm_cache.stats.get("cache.verdict.hits")
    assert hits == len(suite), f"expected {len(suite)} verdict hits, got {hits}"

    # Cached and uncached verdicts are byte-identical: a warm hit
    # replays the stored snapshot, timings included.
    for name, cold in cold_results.items():
        assert json.dumps(cold.to_dict(), sort_keys=True) == json.dumps(
            warm_results[name].to_dict(), sort_keys=True
        ), f"{name}: warm verdict differs from cold"

    speedup = cold_seconds / warm_seconds
    usage = warm_cache.usage()
    lines = [
        "Persistent verification cache: 56-test suite, cold vs warm",
        "",
        f"{'run':12s} {'wall':>9s} {'verdict hits':>14s}",
        f"{'cold':12s} {cold_seconds:>8.2f}s {0:>11d}/{len(suite)}",
        f"{'warm':12s} {warm_seconds:>8.2f}s {int(hits):>11d}/{len(suite)}",
        "",
        f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR:.0f}x)",
        "",
        "cache contents after the cold run:",
        *(
            f"  {tier:10s} {usage[tier]['entries']:>5d} entries "
            f"{usage[tier]['bytes']:>10d} bytes"
            for tier in ("verdict", "reach", "nfa", "oracle")
        ),
        "",
        "All 56 warm verdicts replayed byte-identical to the cold run's",
        "(timings included; a verdict-tier hit is a disk read, not a",
        "re-verification).",
    ]
    save_table(results_dir, "cache_warm.txt", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-cache speedup {speedup:.1f}x below {SPEEDUP_FLOOR:.0f}x floor"
    )
