"""Benchmark: Figure 14 — percentage of fully proven properties.

Regenerates the figure's data series: per-test percentage of generated
SVA assertions that receive complete proofs under each configuration
(tests discharged by an unreachable covering trace count as 100%), and
the paper's overall fractions: 81% (Hybrid) vs 89% (Full_Proof).
"""

from conftest import save_table


def _proven_percent(result):
    if result.verified_by_cover or not result.properties:
        return 100.0
    return 100.0 * result.proven_count / len(result.properties)


def _figure14_rows(suite, suite_results):
    rows = []
    for test in suite:
        rows.append(
            (
                test.name,
                _proven_percent(suite_results["Hybrid"][test.name]),
                _proven_percent(suite_results["Full_Proof"][test.name]),
            )
        )
    return rows


def _overall(suite_results, config):
    proven = total = 0
    for result in suite_results[config].values():
        if result.verified_by_cover:
            continue
        proven += result.proven_count
        total += len(result.properties)
    return 100.0 * proven / total


def test_figure14_proven_percentages(benchmark, suite, suite_results, results_dir):
    rows = benchmark(_figure14_rows, suite, suite_results)
    hybrid_overall = _overall(suite_results, "Hybrid")
    full_overall = _overall(suite_results, "Full_Proof")

    lines = [
        "Figure 14: percentage of fully proven properties (max. 11",
        "modeled hours) across all 56 tests and both configurations",
        "",
        f"{'test':13s} {'Hybrid':>8s} {'Full_Proof':>11s}",
    ]
    for name, hybrid, full in rows:
        lines.append(f"{name:13s} {hybrid:>7.0f}% {full:>10.0f}%")
    lines += [
        "",
        f"overall (proof-phase properties): Hybrid {hybrid_overall:.0f}%, "
        f"Full_Proof {full_overall:.0f}%",
        "paper: Hybrid 81%, Full_Proof 89%",
    ]
    save_table(results_dir, "figure14_proven.txt", "\n".join(lines))

    # The headline §7.2 numbers.
    assert 77.0 <= hybrid_overall <= 85.0
    assert 85.0 <= full_overall <= 93.0
    assert full_overall > hybrid_overall


def test_full_proof_usually_at_least_hybrid(suite, suite_results, benchmark):
    """Paper: 'In most cases, the Full_Proof configuration can find
    complete proofs for an equivalent or higher number of properties
    ... However, there are tests where the Hybrid configuration does
    better' (n2, n6, rfi013 in the paper)."""

    def analyse():
        at_least = hybrid_better = 0
        hybrid_better_names = []
        for test in suite:
            hybrid = _proven_percent(suite_results["Hybrid"][test.name])
            full = _proven_percent(suite_results["Full_Proof"][test.name])
            if full >= hybrid:
                at_least += 1
            else:
                hybrid_better += 1
                hybrid_better_names.append(test.name)
        return at_least, hybrid_better, hybrid_better_names

    at_least, hybrid_better, names = benchmark(analyse)
    print(f"\nFull_Proof >= Hybrid on {at_least}/56 tests; "
          f"Hybrid strictly better on {hybrid_better}: {names}")
    assert at_least > 40  # "most cases"
    assert hybrid_better >= 1  # the paper's n2/n6/rfi013 phenomenon


def test_per_test_averages(suite, suite_results, benchmark):
    """Paper: 'On average, the Hybrid configuration was able to
    completely prove 81% of the properties per test, while Full_Proof
    found complete proofs for 90% of the properties per test.'"""

    def averages():
        out = {}
        for config in ("Hybrid", "Full_Proof"):
            values = [
                _proven_percent(suite_results[config][test.name])
                for test in suite
                if not suite_results[config][test.name].verified_by_cover
            ]
            out[config] = sum(values) / len(values)
        return out

    avg = benchmark(averages)
    print(f"\nper-test average proven %: {avg}")
    assert avg["Full_Proof"] > avg["Hybrid"]
    assert 70.0 < avg["Hybrid"] < 95.0
    assert 80.0 < avg["Full_Proof"] < 99.0
