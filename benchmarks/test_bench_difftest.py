"""Benchmark: differential fuzzing throughput and oracle cost split.

Times a seed-pinned 20-test campaign on the fixed memory with all four
oracle layers and reports tests/second plus the per-oracle wall-time
split (from the observability spans), then times the buggy-memory
shrink path on the classic ``mp`` shape.  The acceptance bars are
generous — the point is a tracked number, not a tight gate:

* the fixed campaign sustains at least 0.5 cross-checked tests/second;
* shrinking a buggy ``mp`` discrepancy stays under 5 seconds.
"""

import time

from conftest import save_table

from repro import obs
from repro.difftest import FuzzConfig, discrepancy_predicate, run_fuzz, shrink_test
from repro.litmus.test import LitmusTest, Outcome, load, store

MIN_TESTS_PER_SECOND = 0.5
SHRINK_CEILING_SECONDS = 5.0
BUDGET = 20

MP = LitmusTest.of(
    "bench-mp",
    [[store("x", 1), store("y", 1)], [load("y", "r1"), load("x", "r2")]],
    Outcome.of({"r1": 1, "r2": 0}),
)


def test_difftest_throughput(results_dir):
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        result = run_fuzz(
            FuzzConfig(seed=0, budget=BUDGET, observe=True)
        )
    rate = result.tests_run / result.wall_seconds

    oracle_seconds = {}
    for event in recorder.events:
        if event["name"].startswith("oracle."):
            oracle = event["name"].split(".", 1)[1]
            oracle_seconds[oracle] = oracle_seconds.get(oracle, 0.0) + event["dur"]

    start = time.perf_counter()
    predicate = discrepancy_predicate("rtl-vs-model", "buggy")
    minimized, stats = shrink_test(MP, predicate)
    shrink_seconds = time.perf_counter() - start

    lines = [
        f"Differential fuzzing: seed=0 budget={BUDGET}, fixed memory, "
        f"all four oracles",
        "",
        f"{'campaign wall':22s} {result.wall_seconds:>8.2f}s",
        f"{'tests/second':22s} {rate:>8.2f}",
        f"{'discrepancies':22s} {len(result.discrepancies):>8d}",
        "",
        "per-oracle wall-time split:",
    ]
    total = sum(oracle_seconds.values()) or 1.0
    for oracle in sorted(oracle_seconds, key=oracle_seconds.get, reverse=True):
        seconds = oracle_seconds[oracle]
        lines.append(
            f"  {oracle:12s} {seconds:>8.2f}s  ({seconds / total:>5.1%})"
        )
    lines += [
        "",
        f"shrink buggy mp -> {minimized.instruction_count()} instr in "
        f"{shrink_seconds:.2f}s "
        f"({stats['predicate_calls']} predicate calls)",
    ]
    save_table(results_dir, "difftest.txt", "\n".join(lines) + "\n")

    assert result.discrepancies == [], "fixed memory must cross-check clean"
    assert rate >= MIN_TESTS_PER_SECOND, (
        f"fuzz throughput {rate:.2f} tests/s below {MIN_TESTS_PER_SECOND}"
    )
    assert shrink_seconds < SHRINK_CEILING_SECONDS
