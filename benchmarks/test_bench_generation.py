"""Benchmark: assertion/assumption generation (paper Figures 8/10).

The paper highlights that "RTLCheck's assertion and assumption
generation phase takes just seconds" per test; this benchmark times the
generation phase and regenerates the Figure 8 / Figure 10 artifacts.
"""

from conftest import save_table

from repro import RTLCheck, get_test, paper_suite


def test_generation_speed_mp(benchmark):
    rtlcheck = RTLCheck()
    mp = get_test("mp")
    generated = benchmark(rtlcheck.generate, mp)
    assert generated.generation_seconds < 2.0  # "just seconds"
    assert generated.assertions and generated.assumptions


def test_generation_whole_suite(benchmark, suite, results_dir):
    rtlcheck = RTLCheck()

    def generate_all():
        return [rtlcheck.generate(test) for test in suite]

    generated = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    lines = ["Generation phase across the 56-test suite", ""]
    lines.append(f"{'test':13s} {'assumptions':>11s} {'assertions':>10s} {'ms':>7s}")
    total = 0.0
    for test, gen in zip(suite, generated):
        total += gen.generation_seconds
        lines.append(
            f"{test.name:13s} {len(gen.assumptions):>11d} "
            f"{len(gen.assertions):>10d} {gen.generation_seconds * 1000:>6.1f}"
        )
    lines.append("")
    lines.append(f"total generation time: {total:.2f} s "
                 "(paper: 'just seconds per test')")
    save_table(results_dir, "generation.txt", "\n".join(lines))
    assert total < 60.0


def test_figure8_figure10_artifacts(benchmark, results_dir):
    """Emit mp's generated SVA (the paper's Figure 8 assumptions and
    Figure 10 assertion are members of this file)."""
    rtlcheck = RTLCheck()
    generated = benchmark(rtlcheck.generate, get_test("mp"))
    save_table(results_dir, "figure8_figure10_mp.sv", generated.sva_text)
    text = generated.sva_text
    # Figure 8 ingredients: memory init, register init, load values,
    # final values.
    assert "init_dmem_x" in text
    assert "init_reg_c0_x1" in text
    assert "load_value_i3" in text
    assert "final_values" in text
    # Figure 10 ingredients: first |-> guard, delay-excluded events,
    # value-constrained load WB.
    assert "first |->" in text
    assert "[*0:$]" in text
    assert "load_data_WB == 32'd0" in text
