"""Benchmark: job server, cold vs warm suite job over a real socket.

Submits the same suite job to two job servers sharing one cache
directory.  The first (cold) server computes every verdict through its
process pool; the second (warm) server starts fresh, receives the
identical spec, and must answer it as a pure cache hit — byte-identical
report, no process pool ever spawned (asserted through ``/v1/stats``).
The acceptance bar is a >= 5x wall-time improvement: the warm path is
one HTTP round trip plus a disk read, so the serve plumbing must not
erode the cache-tier speedup that ``cache_warm.txt`` establishes for
the in-process path.
"""

import json
import time

from conftest import save_table

from repro.serve import ServeClient, ThreadedServer

SPEEDUP_FLOOR = 5.0

SPEC = {
    "kind": "suite",
    "params": {"tests": ["mp", "sb", "lb", "iwp24", "iriw", "amd3"]},
}


def _timed_run(port):
    client = ServeClient(port=port, timeout=600)
    start = time.perf_counter()
    submission, report = client.run(SPEC)
    seconds = time.perf_counter() - start
    return submission, report, seconds, client.stats()


def test_serve_warm_job_speedup(results_dir, tmp_path):
    cache_dir = tmp_path / "cache"

    with ThreadedServer(cache_dir=str(cache_dir), jobs=2) as cold:
        cold_sub, cold_report, cold_seconds, cold_stats = _timed_run(cold.port)
    assert cold_sub["source"] == "created"
    assert cold_stats["pool"]["pools_spawned"] == 1

    with ThreadedServer(cache_dir=str(cache_dir), jobs=2) as warm:
        warm_sub, warm_report, warm_seconds, warm_stats = _timed_run(warm.port)
    assert warm_sub["source"] == "cache"

    # The warm server answered from serve/reports/ without ever paying
    # process-pool startup or dispatching a unit.
    assert warm_stats["pool"]["pools_spawned"] == 0
    assert warm_stats["pool"]["units_dispatched"] == 0
    assert warm_stats["counters"]["cache_hits"] == 1

    # Cache hits replay the stored snapshot, timings included: the
    # served documents are byte-identical, not merely equivalent.
    assert json.dumps(cold_report, sort_keys=True) == json.dumps(
        warm_report, sort_keys=True
    ), "warm served report differs from cold"

    speedup = cold_seconds / warm_seconds
    lines = [
        "Job server: identical suite job, cold vs warm server",
        f"  tests per job        {len(SPEC['params']['tests'])}",
        f"  cold (computed)      {cold_seconds:8.2f} s   pool spawned, "
        f"{cold_stats['pool']['units_dispatched']} units dispatched",
        f"  warm (cache hit)     {warm_seconds:8.2f} s   no pool, 0 units",
        f"  speedup              {speedup:8.1f} x   (floor {SPEEDUP_FLOOR}x)",
        "  reports byte-identical: yes",
        "",
    ]
    save_table(results_dir, "serve.txt", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm serve speedup {speedup:.1f}x below floor {SPEEDUP_FLOOR}x"
    )
