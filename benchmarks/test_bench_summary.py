"""Benchmark: §7.2 aggregate statistics.

Regenerates the evaluation's remaining headline numbers:

* average bounded-proof bounds: 43 cycles (Hybrid) vs 22 (Full_Proof);
* modeled CPU-time totals (the paper reports 1733 / 1390 CPU-hours);
* the per-test runtime averages;
* every test verifies on the fixed design under both configurations.
"""

from conftest import save_table

from repro.verifier.config import CONFIGS


def _bounds(suite_results, config):
    bounds = []
    for result in suite_results[config].values():
        bounds.extend(result.bounded_bounds)
    return bounds


def test_average_bounded_proof_bounds(suite_results, benchmark, results_dir):
    def compute():
        return {
            config: _bounds(suite_results, config) for config in suite_results
        }

    bounds = benchmark(compute)
    hybrid_avg = sum(bounds["Hybrid"]) / len(bounds["Hybrid"])
    full_avg = sum(bounds["Full_Proof"]) / len(bounds["Full_Proof"])
    lines = [
        "Bounded-proof statistics (paper §7.2)",
        "",
        f"Hybrid:     {len(bounds['Hybrid'])} bounded proofs, "
        f"average bound {hybrid_avg:.0f} cycles (paper: 43)",
        f"Full_Proof: {len(bounds['Full_Proof'])} bounded proofs, "
        f"average bound {full_avg:.0f} cycles (paper: 22)",
        "",
        "Litmus tests are short programs, so executions of interest fall",
        "within these bounds, giving considerable confidence in the",
        "implementation even where complete proofs were not found.",
    ]
    save_table(results_dir, "bounded_proofs.txt", "\n".join(lines))
    assert 38 <= hybrid_avg <= 48
    assert 17 <= full_avg <= 27
    assert hybrid_avg > full_avg  # Hybrid's bounded engines push deeper


def test_cpu_time_totals(suite, suite_results, benchmark, results_dir):
    """The paper's total CPU time: modeled hours x cores per test."""

    def compute():
        out = {}
        for config_name, results in suite_results.items():
            config = CONFIGS[config_name]
            total = sum(r.modeled_hours for r in results.values())
            out[config_name] = (total, total * config.cores_per_test)
        return out

    totals = benchmark(compute)
    lines = ["Modeled CPU time (paper: Hybrid 1733 h on 5 threads/test,",
             "Full_Proof 1390 h on 4 threads/test)", ""]
    for config_name, (wall, cpu) in totals.items():
        lines.append(
            f"{config_name:12s} modeled wall {wall:7.0f} h, "
            f"modeled CPU {cpu:7.0f} h"
        )
    save_table(results_dir, "cpu_time.txt", "\n".join(lines))
    # Same order of magnitude and same ranking driver as the paper
    # (Hybrid uses 5 threads/test vs Full_Proof's 4).
    for config_name, (wall, cpu) in totals.items():
        assert 300 < cpu < 3000


def test_everything_verifies_on_fixed_design(suite, suite_results, benchmark):
    """The paper's bottom line: after the bug fix, the multicore V-scale
    RTL satisfies the SC-sufficient axioms across all 56 tests."""

    def check():
        failures = []
        for config, results in suite_results.items():
            for name, result in results.items():
                if not result.verified:
                    failures.append((config, name))
        return failures

    failures = benchmark(check)
    assert failures == []


def test_summary_report(suite, suite_results, benchmark, results_dir):
    def build():
        lines = ["RTLCheck reproduction: evaluation summary", ""]
        for config, results in suite_results.items():
            cover = sum(1 for r in results.values() if r.verified_by_cover)
            props = sum(len(r.properties) for r in results.values())
            proven = sum(r.proven_count for r in results.values())
            gen_seconds = sum(r.generation_seconds for r in results.values())
            lines += [
                f"[{config}]",
                f"  tests verified:             56/56",
                f"  via unreachable cover:      {cover} (paper: 22)",
                f"  proof-phase properties:     {props}",
                f"  fully proven:               {proven} "
                f"({100 * proven / props:.0f}%)",
                f"  generation time (all 56):   {gen_seconds:.1f} s",
                "",
            ]
        return "\n".join(lines)

    report = benchmark(build)
    save_table(results_dir, "summary.txt", report)
