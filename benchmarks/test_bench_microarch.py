"""Benchmark: the Check-suite layer RTLCheck builds on (paper §2.1).

Times the microarchitectural µhb-graph verification across the 56-test
suite and cross-checks every verdict against the independent SC oracle
— the precondition for RTLCheck's soundness is that the µspec model is
faithful, and this is how the paper's Figure 3a layer is exercised.
"""

from conftest import save_table

from repro import paper_suite
from repro.litmus import get_test
from repro.memodel import sc_allowed
from repro.uhb import microarch_observable
from repro.uspec import multi_vscale_model


def test_microarch_mp(benchmark):
    model = multi_vscale_model()
    result = benchmark(microarch_observable, model, get_test("mp"))
    assert not result.observable


def test_microarch_amd3_largest_test(benchmark):
    """amd3 (8 memory ops) is the enumeration worst case."""
    model = multi_vscale_model()
    result = benchmark(microarch_observable, model, get_test("amd3"))
    assert result.observable  # amd3's outcome is SC-allowed


def test_microarch_full_suite_against_oracle(benchmark, suite, results_dir):
    model = multi_vscale_model()

    def sweep():
        rows = []
        for test in suite:
            result = microarch_observable(model, test)
            rows.append(
                (test.name, result.observable, sc_allowed(test),
                 result.solve.leaves_enumerated)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Check-style microarchitectural verification across the suite",
        "",
        f"{'test':13s} {'uhb verdict':>12s} {'SC oracle':>10s} {'leaves':>7s}",
    ]
    mismatches = []
    for name, observable, oracle, leaves in rows:
        fmt = lambda b: "observable" if b else "forbidden"
        mark = "" if observable == oracle else "   <-- MISMATCH"
        if observable != oracle:
            mismatches.append(name)
        lines.append(
            f"{name:13s} {fmt(observable):>12s} {fmt(oracle):>10s} {leaves:>7d}{mark}"
        )
    save_table(results_dir, "microarch_suite.txt", "\n".join(lines))
    assert mismatches == []
