"""Benchmark: long-program fuzzing throughput via the trace oracle.

The point of the sampled trace oracle is scale: per test it costs
``O(samples · cycles)`` regardless of program length, where exhaustive
RTL enumeration is exponential in it.  This benchmark runs a
long-program fuzz campaign (16 instructions per thread, trace oracle
only) and compares its per-test throughput against the exhaustive RTL
oracle's per-test throughput on the classic litmus shapes — the
*easiest* programs enumeration ever sees, so the comparison is stacked
against the trace oracle and the bar below is conservative.

Acceptance: the long-program campaign sustains at least 10x the
per-test throughput of the exhaustive RTL oracle.
"""

import random
import time

from conftest import save_table

from repro import get_test
from repro.difftest.oracles import rtl_verdicts, trace_verdicts
from repro.litmus.test import LitmusTest, Outcome, load, store

MIN_SPEEDUP = 10.0
LONG_TESTS = 6
LONG_THREAD_OPS = 16
TRACE_SAMPLES = 8
RTL_TESTS = ("mp", "sb", "iwp24", "iriw", "amd3")


def _long_suite():
    """Deterministic 16-ops-per-thread programs with unique store
    values per location (the generator's long-program shape)."""
    tests = []
    for index in range(LONG_TESTS):
        rng = random.Random(f"bench-polycheck:{index}")
        variables = ["x", "y", "z"]
        next_value = {var: 0 for var in variables}
        threads, reg = [], 0
        for _ in range(2):
            ops = []
            for _ in range(LONG_THREAD_OPS):
                var = rng.choice(variables)
                if rng.random() < 0.5:
                    next_value[var] += 1
                    ops.append(store(var, next_value[var]))
                else:
                    reg += 1
                    ops.append(load(var, f"r{reg}"))
            threads.append(ops)
        tests.append(
            LitmusTest.of(f"bench-long-{index}", threads, Outcome.of({}))
        )
    return tests


def test_long_program_trace_throughput(results_dir):
    long_tests = _long_suite()

    start = time.perf_counter()
    nonconformant = undrained = 0
    for test in long_tests:
        checks, _sampled, und = trace_verdicts(
            test, "fixed", samples=TRACE_SAMPLES
        )
        nonconformant += sum(1 for c in checks if not c.conformant)
        undrained += und
    trace_seconds = time.perf_counter() - start
    trace_per_test = trace_seconds / len(long_tests)

    start = time.perf_counter()
    for name in RTL_TESTS:
        enum = rtl_verdicts(get_test(name), "fixed")
        assert enum.complete
    rtl_seconds = time.perf_counter() - start
    rtl_per_test = rtl_seconds / len(RTL_TESTS)

    speedup = rtl_per_test / trace_per_test

    lines = [
        f"Trace-oracle long-program throughput "
        f"({LONG_THREAD_OPS} instr/thread, {TRACE_SAMPLES} samples/test)",
        "",
        f"{'long tests':28s} {len(long_tests):>8d}",
        f"{'trace oracle per test':28s} {trace_per_test:>8.3f}s",
        f"{'rtl enumeration per test':28s} {rtl_per_test:>8.3f}s  "
        f"(classic shapes — enumeration cannot run the long tests at all)",
        f"{'per-test speedup':28s} {speedup:>8.1f}x  (bar: {MIN_SPEEDUP:.0f}x)",
        "",
        f"fixed-memory conformance: {nonconformant} nonconformant, "
        f"{undrained} undrained",
    ]
    save_table(results_dir, "polycheck.txt", "\n".join(lines) + "\n")

    assert undrained == 0
    assert nonconformant == 0, "fixed memory must be SC-clean"
    assert speedup >= MIN_SPEEDUP, (
        f"trace oracle speedup {speedup:.1f}x below {MIN_SPEEDUP:.0f}x"
    )
