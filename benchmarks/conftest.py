"""Shared fixtures for the paper-reproduction benchmark harness.

``suite_results`` runs RTLCheck over the full 56-test suite under both
Table-1 engine configurations exactly once per session; the per-figure
benchmarks aggregate it into the paper's tables and figures.  Rendered
tables are written under ``benchmarks/results/``.
"""

from pathlib import Path

import pytest

from repro import CONFIGS, RTLCheck, paper_suite

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite():
    return paper_suite()


@pytest.fixture(scope="session")
def suite_results(suite):
    """{config name: {test name: TestVerification}} on the fixed design."""
    results = {}
    for name, config in CONFIGS.items():
        rtlcheck = RTLCheck(config=config)
        results[name] = {
            test.name: rtlcheck.verify_test(test) for test in suite
        }
    return results


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text)
    print(f"\n{text}")
