"""Benchmark: discovering the V-scale bug (paper §7.1, Figure 12).

Times the end-to-end verification of mp against the shipped (buggy)
V-scale memory and regenerates the Figure 12 counterexample timing
diagram.
"""

from conftest import save_table

from repro import RTLCheck, get_test
from repro.rtl import render_timing_diagram

FIGURE12_SIGNALS = [
    "core[0].PC_DX", "core[0].PC_WB",
    "core[1].PC_DX", "core[1].PC_WB",
    "core[0].store_data_WB", "core[1].load_data_WB",
    "mem.wdata", "mem.wvalid", "mem[40]", "mem[41]",
    "arbiter.cur_core", "arbiter.prev_core",
]


def test_bug_discovery_on_buggy_mp(benchmark, results_dir):
    rtlcheck = RTLCheck()
    mp = get_test("mp")

    result = benchmark(rtlcheck.verify_test, mp, "buggy")
    assert result.bug_found
    failing = result.counterexamples[0]
    assert "Read_Values" in failing.name  # the paper's offending axiom

    frames = [frame for _inputs, frame in failing.counterexample]
    diagram = render_timing_diagram(frames, FIGURE12_SIGNALS)
    report = "\n".join(
        [
            "Figure 12 reproduction: counterexample for "
            f"{failing.name} on the buggy memory",
            "",
            diagram,
            "",
            "Bug mechanics: the second store's address phase pushes the",
            "STALE wdata value into the first store's slot, dropping the",
            "store of x; the load of y bypasses from wdata while the load",
            "of x reads the corrupted array.",
        ]
    )
    save_table(results_dir, "figure12_counterexample.txt", report)

    # The defining signature of the bug: wdata active but the x slot
    # (mem[40]) never receives the stored 1.
    assert any(frame.get("mem.wvalid") for frame in frames)
    assert all(frame.get("mem[40]", 0) == 0 for frame in frames)


def test_fixed_memory_kills_the_counterexample(benchmark):
    rtlcheck = RTLCheck()
    result = benchmark(rtlcheck.verify_test, get_test("mp"), "fixed")
    assert result.verified


def test_bug_found_by_other_tests_too(benchmark, results_dir):
    """§7.1 notes the bug fires whenever two stores reach memory in
    successive cycles — including stores from *different* cores through
    the arbiter; loads observing the dropped value raise Read_Values
    counterexamples."""
    rtlcheck = RTLCheck()
    names = ["mp", "mp+staleld", "n1", "wrc", "sb", "ssl"]

    def sweep():
        return {
            name: rtlcheck.verify_test(get_test(name), "buggy") for name in names
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Buggy-memory sweep: which litmus tests expose the bug?", ""]
    for name, result in results.items():
        status = "COUNTEREXAMPLE" if result.bug_found else "verified"
        lines.append(f"  {name:12s} {status}")
    lines += [
        "",
        "mp / mp+staleld: back-to-back same-core stores, later load",
        "observes the drop.  sb: cross-core stores arbitrated into",
        "successive cycles.  ssl: same-address traffic is masked by the",
        "wdata bypass.  n1: the drop only corrupts *final memory*, which",
        "RTL assertions conservatively cannot check (paper §4.2) — the",
        "known blind spot of per-test RTL translation.",
    ]
    save_table(results_dir, "bug_exposure.txt", "\n".join(lines))
    assert results["mp"].bug_found
    assert results["mp+staleld"].bug_found
    assert results["sb"].bug_found
    # Back-to-back same-address traffic masks the bug: ssl verifies.
    assert not results["ssl"].bug_found
    # n1's divergence is final-memory-only: invisible at RTL (§4.2).
    assert not results["n1"].bug_found
    assert "final_values" in results["n1"].cover.fired_assumptions
