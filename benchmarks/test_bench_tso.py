"""Benchmark: the x86-TSO extension (beyond the paper's evaluation).

The paper's method section claims support for weaker ISA-level MCMs but
evaluates only an SC design.  This bench exercises the claim: the
store-buffer Multi-V-scale-TSO design is verified against its TSO µspec
model across the full 56-test suite, the defining relaxation (sb) is
shown to be both reachable and axiom-satisfying, and a seeded
LIFO-drain bug is caught through the Store_Buffer_FIFO assertions.
"""

from conftest import save_table

from repro import RTLCheck, get_test


def test_tso_sb_relaxation_verified(benchmark):
    rtlcheck = RTLCheck.for_tso()
    result = benchmark(rtlcheck.verify_test, get_test("sb"))
    # The SC-forbidden store-buffering outcome is reachable...
    assert "final_values" in result.cover.fired_assumptions
    # ... and every TSO axiom is nevertheless satisfied.
    assert result.verified and not result.bug_found


def test_tso_lifo_drain_bug(benchmark):
    rtlcheck = RTLCheck.for_tso()
    result = benchmark(rtlcheck.verify_test, get_test("mp"), "buggy")
    assert result.bug_found
    assert any("Store_Buffer_FIFO" in p.name for p in result.counterexamples)


def test_tso_full_suite(benchmark, suite, results_dir):
    rtlcheck = RTLCheck.for_tso()

    def sweep():
        return {test.name: rtlcheck.verify_test(test) for test in suite}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "x86-TSO extension: RTLCheck on Multi-V-scale-TSO across the",
        "56-test suite (TSO µspec model, Memory-stage node mapping)",
        "",
        f"{'test':13s} {'phase':18s} {'proven':>9s} {'modeled':>8s}",
    ]
    relaxed = []
    for name, result in results.items():
        if result.verified_by_cover:
            phase = "cover-unreachable"
        else:
            phase = "proof phase"
            # Reachable outcome on TSO; note the ones SC would forbid.
            from repro.memodel import sc_allowed, tso_allowed

            test = get_test(name)
            if tso_allowed(test) and not sc_allowed(test):
                relaxed.append(name)
        proven = (
            f"{result.proven_count}/{len(result.properties)}"
            if result.properties
            else "-"
        )
        lines.append(
            f"{name:13s} {phase:18s} {proven:>9s} {result.modeled_hours:>7.2f}h"
        )
    lines += [
        "",
        f"TSO-relaxed tests (SC forbids, TSO design exhibits): {relaxed}",
    ]
    save_table(results_dir, "tso_suite.txt", "\n".join(lines))
    assert all(r.verified for r in results.values())
    assert "sb" in relaxed
