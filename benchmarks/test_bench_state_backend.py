"""Benchmark: array-backed interned state vs dict/deepcopy snapshots.

The dict backend snapshots a design as nested tuples rebuilt from
Python dicts and expands a frontier node with one full
restore/eval/tick round trip per free-input choice.  The array backend
writes a flat slot vector once, hash-conses it to an integer id, and
expands all arbiter-grant choices from a single settled evaluation
(the grant feeds only the arbiter's registered state, so the shared
frame is reused and only one slot differs per choice).

This benchmark times a *cold* full reachability-graph build — the part
of the pipeline the backend actually changes — for every suite test on
the fixed design, both backends, and asserts the tentpole's >= 2x
floor.  Node/transition counts are asserted identical, so the speedup
is a pure representation win, not a workload change.
"""

import time

from conftest import save_table

from repro import paper_suite
from repro.litmus import compile_test
from repro.mapping import MultiVScaleProgramMapping
from repro.sva import AssumptionChecker
from repro.verifier.reach import ReachGraph
from repro.vscale.soc import MultiVScale

SPEEDUP_FLOOR = 2.0


def _build(compiled, assumptions, backend):
    design = MultiVScale(compiled, "fixed", state_backend=backend)
    graph = ReachGraph(design, AssumptionChecker(assumptions))
    frontier = [graph.root]
    seen = {graph.root}
    while frontier:
        node = frontier.pop()
        for _index, _inputs, _frame, child in graph.live_successors(node):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return graph, design


def test_state_backend_graph_build_speedup(suite, results_dir):
    compiled_tests = [
        (test.name, compile_test(test)) for test in suite
    ]
    assumption_sets = {
        name: MultiVScaleProgramMapping(compiled).all_assumptions()
        for name, compiled in compiled_tests
    }

    totals = {}
    stats = {}
    for backend in ("dict", "array"):
        seconds = 0.0
        nodes = 0
        transitions = 0
        interned = 0
        batches = 0
        for name, compiled in compiled_tests:
            start = time.perf_counter()
            graph, design = _build(compiled, assumption_sets[name], backend)
            seconds += time.perf_counter() - start
            nodes += graph.num_nodes
            transitions += graph.sim_transitions
            if backend == "array":
                interned += design.states_interned
                batches += design.batch_expansions
        totals[backend] = seconds
        stats[backend] = (nodes, transitions, interned, batches)

    # Same workload: identical graphs, identical logical transitions.
    assert stats["array"][0] == stats["dict"][0]
    assert stats["array"][1] == stats["dict"][1]

    speedup = totals["dict"] / totals["array"]
    nodes, transitions, interned, batches = stats["array"]
    lines = [
        "Array-backed state: cold ReachGraph build, 56 tests, fixed design",
        "",
        f"{'backend':10s} {'wall':>8s}",
        f"{'dict':10s} {totals['dict']:>7.2f}s",
        f"{'array':10s} {totals['array']:>7.2f}s",
        "",
        f"speedup: {speedup:.2f}x (floor: {SPEEDUP_FLOOR:.0f}x)",
        "",
        f"graph nodes (identical both backends): {nodes}",
        f"logical transitions (identical both backends): {transitions}",
        f"distinct interned states: {interned}",
        f"batched expansions: {batches} "
        f"(one eval/tick each, vs {transitions} dict round trips)",
        "",
        "The array backend pays one settled evaluation per frontier node",
        "and patches the single arbiter-grant slot per input choice; the",
        "dict backend replays the full restore/eval/tick loop per input.",
    ]
    save_table(results_dir, "state_backend.txt", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"array backend speedup {speedup:.2f}x below {SPEEDUP_FLOOR:.0f}x floor"
    )
