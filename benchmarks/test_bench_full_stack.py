"""Benchmark: full-stack HLL→RTL checking (the paper's contribution 4).

Sweeps the classic C11 shapes across memory orders, compiler mappings,
and both platforms, verifying stack soundness and demonstrating that
the broken mapping (dropped seq_cst fences) is localized as a compiler
bug rather than a hardware bug.
"""

from conftest import save_table

from repro.hll import (
    ACQUIRE,
    RELAXED,
    RELEASE,
    SC_MAPPING,
    SEQ_CST,
    TSO_MAPPING,
    TSO_MAPPING_BROKEN,
    c11_mp,
    c11_sb,
    check_full_stack,
)


def _sweep():
    cases = [
        (c11_mp(SEQ_CST, SEQ_CST), TSO_MAPPING, "tso"),
        (c11_mp(RELEASE, ACQUIRE), TSO_MAPPING, "tso"),
        (c11_mp(RELAXED, RELAXED), TSO_MAPPING, "tso"),
        (c11_sb(SEQ_CST), TSO_MAPPING, "tso"),
        (c11_sb(SEQ_CST), TSO_MAPPING_BROKEN, "tso"),
        (c11_sb(RELAXED), TSO_MAPPING_BROKEN, "tso"),
        (c11_sb(SEQ_CST), SC_MAPPING, "sc"),
        (c11_mp(SEQ_CST, SEQ_CST), SC_MAPPING, "sc"),
    ]
    return [check_full_stack(test, mapping, platform) for test, mapping, platform in cases]


def test_full_stack_sweep(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Full-stack C11 -> compiler mapping -> ISA -> RTL sweep",
        "",
        f"{'source':26s} {'mapping':22s} {'plat':5s} {'C11':>9s} "
        f"{'RTL reach':>9s} {'verdict':>12s}",
    ]
    for r in results:
        verdict = (
            "MAPPING BUG"
            if r.mapping_bug
            else ("sound" if r.stack_sound else "UNSOUND")
        )
        lines.append(
            f"{r.hll_test.name:26s} {r.mapping_name:22s} {r.platform:5s} "
            f"{'allowed' if r.hll_allowed else 'forbidden':>9s} "
            f"{'yes' if r.rtl_reachable else 'no':>9s} {verdict:>12s}"
        )
    save_table(results_dir, "full_stack.txt", "\n".join(lines))

    bugs = [r for r in results if r.mapping_bug]
    assert len(bugs) == 1
    assert bugs[0].mapping_name == "tso-broken-no-fence"
    assert bugs[0].hll_test.name.startswith("c11-sb")
    # Every hardware design kept its own contract throughout.
    assert all(r.design_keeps_its_contract for r in results)
    # All other stacks are sound.
    assert all(r.stack_sound for r in results if not r.mapping_bug)
