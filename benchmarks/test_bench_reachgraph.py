"""Benchmark: shared reachability-graph cache vs per-property exploration.

The per-property explorer re-simulates the assumption-constrained
design for every generated assertion; the cached-graph explorer
simulates each design state once per (test, memory variant) and checks
every property as a product walk over the memoized transitions.  This
benchmark times ``verify_suite`` over the full 56-test suite both ways
(single process) and records the per-phase breakdown; the acceptance
bar is a >= 3x wall-time improvement.
"""

import time

from conftest import save_table

from repro import RTLCheck, paper_suite

SPEEDUP_FLOOR = 3.0


def test_reachgraph_suite_speedup(suite, results_dir):
    start = time.perf_counter()
    seed_results = RTLCheck(use_reach_graph=False).verify_suite(suite)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    graph_results = RTLCheck(use_reach_graph=True).verify_suite(suite)
    graph_seconds = time.perf_counter() - start

    speedup = seed_seconds / graph_seconds
    build = sum(r.graph_build_seconds for r in graph_results.values())
    proof = sum(r.proof_seconds for r in graph_results.values())
    cover = sum(r.cover_seconds for r in graph_results.values())
    sim_transitions = sum(r.graph_transitions for r in graph_results.values())
    walked = sum(
        p.ground_truth.transitions
        for r in graph_results.values()
        for p in r.properties
    )
    properties = sum(len(r.properties) for r in graph_results.values())

    lines = [
        "Reachability-graph cache: 56-test suite, single process",
        "",
        f"{'explorer':14s} {'wall':>8s}",
        f"{'per-property':14s} {seed_seconds:>7.1f}s",
        f"{'graph cache':14s} {graph_seconds:>7.1f}s",
        "",
        f"speedup: {speedup:.2f}x (floor: {SPEEDUP_FLOOR:.0f}x)",
        "",
        "graph-cache phase breakdown (summed over tests):",
        f"  graph build     {build:>6.1f}s "
        f"({sim_transitions} design transitions simulated once)",
        f"  cover walks     {cover:>6.1f}s (includes the build they trigger)",
        f"  property walks  {proof:>6.1f}s "
        f"({properties} properties, {walked} replayed transitions)",
        "",
        "Per-property exploration would have re-simulated every replayed",
        "transition; the cache pays the design cost once per test.",
    ]
    save_table(results_dir, "reachgraph_speedup.txt", "\n".join(lines))

    # Both explorers reach the same verdicts (the equivalence suite
    # checks this exhaustively; assert the headline here too).
    for name, seed in seed_results.items():
        graph = graph_results[name]
        assert graph.verified == seed.verified
        assert graph.modeled_hours == seed.modeled_hours

    assert speedup >= SPEEDUP_FLOOR, (
        f"graph cache speedup {speedup:.2f}x below {SPEEDUP_FLOOR:.0f}x floor"
    )
