"""Benchmark: observability overhead, no-op recorder vs full tracing.

``repro.obs`` promises that the default ``NullRecorder`` makes
observability essentially free: spans always time themselves (the
phase-timing fields need their durations) but nothing is stored, and
hot loops accumulate counters in plain attributes flushed only at
phase boundaries.  This benchmark times ``verify_suite`` over the
mp/sb/lb subset with ``observe=False`` (no-op recorder) and
``observe=True`` (full per-test ``TraceRecorder``); the acceptance bar
is full tracing within 3% of the no-op wall time.

Min-of-repeats is used on both sides to strip scheduler noise.
"""

import time

from conftest import save_table

from repro import RTLCheck, get_test

OVERHEAD_CEILING = 0.03
SUBSET = ("mp", "sb", "lb")
REPEATS = 3


def _best_wall(observe: bool, tests) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        rtlcheck = RTLCheck(observe=observe)
        start = time.perf_counter()
        rtlcheck.verify_suite(tests, memory_variant="fixed")
        best = min(best, time.perf_counter() - start)
    return best


def test_observability_overhead(results_dir):
    tests = [get_test(name) for name in SUBSET]
    _best_wall(False, tests)  # warm caches before either measurement
    noop_seconds = _best_wall(False, tests)
    traced_seconds = _best_wall(True, tests)
    overhead = (traced_seconds - noop_seconds) / noop_seconds

    lines = [
        f"Observability overhead: {len(SUBSET)}-test subset "
        f"({', '.join(SUBSET)}), best of {REPEATS}",
        "",
        f"{'recorder':14s} {'wall':>9s}",
        f"{'no-op':14s} {noop_seconds:>8.3f}s",
        f"{'full tracing':14s} {traced_seconds:>8.3f}s",
        "",
        f"overhead: {overhead:+.1%} (ceiling: {OVERHEAD_CEILING:.0%})",
        "",
        "Spans always time themselves (the phase fields need their",
        "durations); only storage is gated on the recorder, and hot-loop",
        "counters accumulate in plain attributes flushed per phase.",
    ]
    save_table(results_dir, "obs_overhead.txt", "\n".join(lines) + "\n")

    assert overhead < OVERHEAD_CEILING, (
        f"tracing overhead {overhead:.1%} exceeds {OVERHEAD_CEILING:.0%} "
        f"({traced_seconds:.3f}s vs {noop_seconds:.3f}s)"
    )
