"""Ablation benchmarks for RTLCheck's design choices.

The paper motivates three translation mechanisms with semantics
arguments (§3.3, §3.4, §4.1); these ablations demonstrate each is
load-bearing by disabling it:

1. **Delay-cycle event exclusion (§3.3/§4.3)** — mapping µhb edges with
   standard unbounded SVA delays (``##[0:$] src ##[1:$] dst``) lets the
   delay swallow out-of-order events: the naive encoding misses the
   V-scale bug that the strict encoding catches.
2. **Match-attempt filtering (§3.4/§4.4)** — without the ``first |->``
   guard, SVA starts a match attempt every cycle, and attempts anchored
   after an event has passed fail spuriously on correct designs.
3. **Final-value assumptions (§4.1)** — removing the covering-trace
   shortcut forces every test through the proof phase, inflating
   runtime for the tests whose outcome is simply unreachable.
4. **µspec axiom coverage** — dropping the memory-pipelining axiom from
   the model weakens microarchitectural verification until forbidden
   outcomes appear observable.
"""

from conftest import save_table

from repro import RTLCheck, get_test, paper_suite
from repro.core.assertions import AssertionGenerator
from repro.litmus import compile_test
from repro.mapping import MultiVScaleNodeMapping, MultiVScaleProgramMapping
from repro.memodel import sc_allowed
from repro.rtl import Simulator
from repro.sva import (
    AssumptionChecker,
    BConst,
    PSeq,
    PropertyMonitor,
    SBool,
    SRepeat,
    run_monitor_on_trace,
    scat,
)
from repro.uhb import microarch_observable
from repro.uspec import multi_vscale_model, parse_uspec, model_source
from repro.verifier import Explorer, FAILED, PROVEN
from repro.verifier.config import EXPLORER_BUDGET
from repro.vscale import MultiVScale


class NaiveAssertionGenerator(AssertionGenerator):
    """§3.3's straw-man: unbounded delays instead of event exclusion."""

    def _edge_property(self, edge, env):
        seq = scat(
            SRepeat(BConst(True), 0, None),
            SBool(self._map(edge.src, env)),
            SRepeat(BConst(True), 0, None),
            SBool(self._map(edge.dst, env)),
        )
        return PSeq(seq)


def _explorer_for(compiled, variant):
    design = MultiVScale(compiled, variant)
    checker = AssumptionChecker(
        MultiVScaleProgramMapping(compiled).all_assumptions()
    )
    return Explorer(design, checker)


def test_ablation_naive_delay_encoding_misses_the_bug(benchmark, results_dir):
    model = multi_vscale_model()
    compiled = compile_test(get_test("mp"))
    node_mapping = MultiVScaleNodeMapping(compiled)

    def run(generator_cls):
        generator = generator_cls(
            model=model, compiled=compiled, node_mapping=node_mapping
        )
        explorer = _explorer_for(compiled, "buggy")
        verdicts = {}
        for directive in generator.generate():
            if "Read_Values" not in directive.name:
                continue
            result = explorer.check_property(
                PropertyMonitor(directive), EXPLORER_BUDGET
            )
            verdicts[directive.name] = result.verdict
        return verdicts

    def both():
        return run(AssertionGenerator), run(NaiveAssertionGenerator)

    strict, naive = benchmark.pedantic(both, rounds=1, iterations=1)
    lines = [
        "Ablation 1 (paper §3.3): edge mapping with vs without",
        "delay-cycle event exclusion, checked on the buggy memory",
        "",
        f"{'Read_Values property':32s} {'strict':>8s} {'naive':>8s}",
    ]
    for name in strict:
        lines.append(f"{name:32s} {strict[name]:>8s} {naive.get(name, '-'):>8s}")
    lines += [
        "",
        "The naive ##[0:$] encoding never empties its NFA, so the",
        "reversed-order counterexample goes unnoticed — 'this naive",
        "property would incorrectly' miss the RTL bug (paper §3.3).",
    ]
    save_table(results_dir, "ablation_delay_encoding.txt", "\n".join(lines))
    assert FAILED in strict.values()
    assert FAILED not in naive.values()


def test_ablation_match_attempt_filtering(benchmark, results_dir):
    """§3.4: without `first |->`, match attempts anchored mid-execution
    fail on a perfectly correct design."""
    compiled = compile_test(get_test("mp"))
    model = multi_vscale_model()
    generator = AssertionGenerator(
        model=model,
        compiled=compiled,
        node_mapping=MultiVScaleNodeMapping(compiled),
    )
    directive = next(
        d for d in generator.generate() if "Instruction_Path" in d.name
    )

    def run():
        soc = MultiVScale(compiled, "fixed")
        sim = Simulator(soc)
        for _ in range(40):
            sim.step({"arb_select": 0})
            if soc.drained():
                break
        trace = sim.trace
        monitor = PropertyMonitor(directive)
        anchored, _ = run_monitor_on_trace(monitor, trace)
        # Unfiltered semantics: one attempt per start cycle; the
        # property holds only if every attempt holds.
        attempt_verdicts = []
        for start in range(len(trace)):
            verdict, _ = run_monitor_on_trace(monitor, trace[start:])
            attempt_verdicts.append(verdict)
        return anchored, attempt_verdicts

    anchored, attempts = benchmark(run)
    spurious = sum(1 for v in attempts[1:] if v is False)
    lines = [
        "Ablation 2 (paper §3.4): match-attempt filtering",
        "",
        f"anchored attempt (with first |->):  {anchored}",
        f"attempts without filtering:         {len(attempts)}",
        f"spuriously failing late attempts:   {spurious}",
        "",
        "A µhb axiom is enforced once per execution; unfiltered SVA",
        "attempts that begin after the instruction's events have passed",
        "can never match and would flag a correct design.",
    ]
    save_table(results_dir, "ablation_match_filtering.txt", "\n".join(lines))
    assert anchored is not False
    assert spurious > 0


def test_ablation_final_value_assumption_speedup(benchmark, results_dir):
    """§4.1: 'a final value assumption forces JasperGold to try and find
    a covering trace of the litmus test outcome, possibly leading to
    quicker verification'."""
    rtlcheck = RTLCheck()
    names = ["mp", "lb", "sb", "co-mp", "safe000", "podwr000"]

    def run():
        rows = []
        for name in names:
            test = get_test(name)
            with_cover = rtlcheck.verify_test(test)
            without = rtlcheck.verify_test(test, skip_cover_shortcut=True)
            rows.append((name, with_cover.modeled_hours, without.modeled_hours))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation 3 (paper §4.1): final-value covering-trace shortcut",
        "",
        f"{'test':12s} {'with shortcut':>14s} {'without':>10s} {'speedup':>8s}",
    ]
    for name, with_h, without_h in rows:
        lines.append(
            f"{name:12s} {with_h:>13.2f}h {without_h:>9.2f}h "
            f"{without_h / max(with_h, 1e-9):>7.1f}x"
        )
    save_table(results_dir, "ablation_final_value.txt", "\n".join(lines))
    assert all(with_h <= without_h for _name, with_h, without_h in rows)
    assert any(without_h / with_h > 5 for _name, with_h, without_h in rows)


def test_ablation_dropped_axiom_weakens_microarch_model(benchmark, results_dir):
    """Axiom ablation at the Check layer, in both failure directions:

    * dropping ``Fetch_FIFO`` (the in-order pipeline) lets forbidden
      outcomes *escape* — the model no longer forbids what the hardware
      forbids;
    * dropping ``Mem_WB_Follows_DX`` (the pipelined memory ordering that
      justifies reads-from edges) makes SC-*allowed* outcomes appear
      unobservable — the model becomes over-strict, so RTL verification
      would chase phantom violations.
    """
    source = model_source("multi_vscale")
    full_model = multi_vscale_model()
    forbidden_names = ["mp", "sb", "iriw", "wrc", "co-mp", "lb"]
    allowed_names = ["iwp24", "n5", "amd3"]

    def drop(axiom_name):
        weakened = parse_uspec(source)
        weakened.axioms = [a for a in weakened.axioms if a.name != axiom_name]
        return weakened

    def run():
        no_fifo = drop("Fetch_FIFO")
        no_mem = drop("Mem_WB_Follows_DX")
        escapes = []
        for name in forbidden_names:
            test = get_test(name)
            assert microarch_observable(full_model, test).observable == sc_allowed(test)
            escapes.append(
                (name, microarch_observable(no_fifo, test).observable)
            )
        over_strict = []
        for name in allowed_names:
            test = get_test(name)
            assert microarch_observable(full_model, test).observable == sc_allowed(test)
            over_strict.append(
                (name, microarch_observable(no_mem, test).observable)
            )
        return escapes, over_strict

    escapes, over_strict = benchmark.pedantic(run, rounds=1, iterations=1)
    escaped = sum(1 for _n, obs in escapes if obs)
    lost = sum(1 for _n, obs in over_strict if not obs)
    lines = [
        "Ablation 4: dropping load-bearing axioms from the µspec model",
        "",
        "without Fetch_FIFO (in-order pipeline): forbidden outcomes that",
        "become observable:",
    ]
    for name, obs in escapes:
        lines.append(f"  {name:8s} {'ESCAPES' if obs else 'still forbidden'}")
    lines += [
        "",
        "without Mem_WB_Follows_DX (memory pipelining): allowed outcomes",
        "that become unobservable (over-strict model):",
    ]
    for name, obs in over_strict:
        lines.append(f"  {name:8s} {'still observable' if obs else 'LOST'}")
    lines += ["", f"escaped: {escaped}, lost: {lost}"]
    save_table(results_dir, "ablation_dropped_axiom.txt", "\n".join(lines))
    assert escaped > 0
    assert lost > 0
