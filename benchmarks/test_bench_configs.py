"""Benchmark: Table 1 — the JasperGold configurations.

Regenerates the configuration table and checks both configurations
behave per their Table 1 roles on a representative property workload.
"""

from conftest import save_table

from repro import CONFIGS, RTLCheck, get_test
from repro.verifier.config import FULL_PROOF, HYBRID


def _render_table1():
    lines = [
        "Table 1: JasperGold configurations used when verifying",
        "Multi-V-scale with RTLCheck",
        "",
        f"{'Config':12s} {'Cover run':12s} {'Proof engine runs':42s} "
        f"{'Mem/Test':>9s} {'Cores':>6s}",
    ]
    for name, config in CONFIGS.items():
        engines = ", ".join(
            f"{e.name}({e.kind},{e.hours:g}h"
            + (f",d<={e.depth_cap}" if e.kind == "bounded" else "")
            + ")"
            for e in config.engines
        )
        lines.append(
            f"{name:12s} {config.cover_hours:g} hour{'':6s} {engines:42s} "
            f"{config.memory_gb_per_test:>7d}GB {config.cores_per_test:>6d}"
        )
    return "\n".join(lines)


def test_table1_configurations(benchmark, results_dir):
    table = benchmark(_render_table1)
    save_table(results_dir, "table1_configs.txt", table)
    assert HYBRID.cores_per_test == 5 and HYBRID.memory_gb_per_test == 64
    assert FULL_PROOF.cores_per_test == 4 and FULL_PROOF.memory_gb_per_test == 120
    assert HYBRID.cover_hours == FULL_PROOF.cover_hours == 1.0
    assert HYBRID.proof_hours == FULL_PROOF.proof_hours == 10.0


def test_configs_differ_on_proof_style(benchmark):
    """Full_Proof dedicates more hours to full-proof engines; Hybrid's
    bounded engines reach deeper bounds."""

    def compare():
        full_hours = {
            name: sum(e.hours for e in config.full_engines)
            for name, config in CONFIGS.items()
        }
        caps = {
            name: max((e.depth_cap for e in config.bounded_engines), default=0)
            for name, config in CONFIGS.items()
        }
        return full_hours, caps

    full_hours, caps = benchmark(compare)
    assert full_hours["Full_Proof"] > full_hours["Hybrid"]
    assert caps["Hybrid"] > caps["Full_Proof"]


def test_configs_agree_on_verdicts(benchmark):
    """Engine configuration affects proven/bounded splits and runtimes,
    never soundness: both configs verify a correct test and both report
    the bug."""

    def run():
        out = {}
        for name, config in CONFIGS.items():
            rtlcheck = RTLCheck(config=config)
            out[name] = (
                rtlcheck.verify_test(get_test("sb")).verified,
                rtlcheck.verify_test(get_test("mp"), "buggy").bug_found,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (verified, bug_found) in results.items():
        assert verified, name
        assert bug_found, name
