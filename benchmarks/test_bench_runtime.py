"""Benchmark: Figure 13 — runtime to verification across all 56 tests.

Regenerates the figure's data series: per-test modeled
runtime-to-verification (hours) for the Hybrid and Full_Proof
configurations, plus the paper's aggregate claims (average ~6 hours per
test, fast tests under 4 minutes, slow tests pinned at the 11-hour
allotment).
"""

from conftest import save_table

from repro import RTLCheck, get_test
from repro.verifier.config import PROOF_PHASE_HOURS, COVER_PHASE_HOURS

MAX_HOURS = COVER_PHASE_HOURS + PROOF_PHASE_HOURS  # the 11-hour cap

#: Tests the paper calls out as verified "in under 4 minutes".
PAPER_FAST_TESTS = ["lb", "mp", "n4", "n5", "safe006"]


def _figure13_rows(suite, suite_results):
    rows = []
    for test in suite:
        hybrid = suite_results["Hybrid"][test.name].modeled_hours
        full = suite_results["Full_Proof"][test.name].modeled_hours
        rows.append((test.name, hybrid, full))
    return rows


def test_figure13_runtime_series(benchmark, suite, suite_results, results_dir):
    rows = benchmark(_figure13_rows, suite, suite_results)

    lines = [
        "Figure 13: JasperGold runtime for test verification across all",
        "56 tests and both engine configurations (modeled hours)",
        "",
        f"{'test':13s} {'Hybrid':>8s} {'Full_Proof':>11s}",
    ]
    for name, hybrid, full in rows:
        bar = "#" * int(round(full))
        lines.append(f"{name:13s} {hybrid:>7.2f}h {full:>10.2f}h  {bar}")
    hybrid_mean = sum(r[1] for r in rows) / len(rows)
    full_mean = sum(r[2] for r in rows) / len(rows)
    lines += [
        "",
        f"mean: Hybrid {hybrid_mean:.1f} h, Full_Proof {full_mean:.1f} h "
        "(paper: 6.2 h for both)",
        f"max:  {max(max(r[1], r[2]) for r in rows):.1f} h "
        f"(per-test allotment: {MAX_HOURS:.0f} h)",
    ]
    save_table(results_dir, "figure13_runtime.txt", "\n".join(lines))

    # Shape assertions mirroring the paper's discussion:
    assert all(r[1] <= MAX_HOURS and r[2] <= MAX_HOURS for r in rows)
    # Some tests exhaust the allotment; some finish in modeled minutes.
    assert any(r[2] >= MAX_HOURS - 0.01 for r in rows)
    assert any(r[2] < 0.2 for r in rows)
    # The paper reports an average of 6.2 hours; our modeled averages
    # land in the same regime (several hours, not minutes).
    assert 2.0 < hybrid_mean < 9.0
    assert 2.0 < full_mean < 9.0


def test_fast_tests_under_four_minutes(suite_results, benchmark):
    """Paper: 'tests like lb, mp, n4, n5, and safe006 ... verified in
    under 4 minutes by either configuration' (via covering traces).  Our
    reconstructed n5/safe006 bodies differ slightly, so we assert the
    paper's named *fast* set is dominated by covering-trace discharges
    and that lb/mp specifically are under 4 modeled minutes."""

    def collect():
        return {
            name: (
                suite_results["Hybrid"][name].modeled_hours,
                suite_results["Full_Proof"][name].modeled_hours,
                suite_results["Full_Proof"][name].verified_by_cover,
            )
            for name in PAPER_FAST_TESTS
        }

    fast = benchmark(collect)
    for config_hours in (fast["lb"], fast["mp"]):
        assert config_hours[0] < 4 / 60
        assert config_hours[1] < 4 / 60
    assert fast["lb"][2] and fast["mp"][2]


def test_cover_verified_count_matches_paper_scale(suite_results, benchmark):
    """Paper §7.2: 22 of 56 tests discharge through unreachable
    covering traces; our reconstruction lands within a few tests."""

    def count():
        return sum(
            1
            for result in suite_results["Full_Proof"].values()
            if result.verified_by_cover
        )

    count_cover = benchmark(count)
    assert 18 <= count_cover <= 28
    print(f"\ncover-verified tests: {count_cover}/56 (paper: 22/56)")


def test_single_test_verification_speed(benchmark):
    """Wall-clock benchmark of one full verification (iriw, the densest
    4-thread test that goes through the proof phase)."""
    rtlcheck = RTLCheck()
    result = benchmark.pedantic(
        rtlcheck.verify_test, args=(get_test("iriw"),), rounds=1, iterations=1
    )
    assert result.verified
