"""Benchmark: simulation vs formal verification (the paper's §1 case).

"Dynamic testing of a design in simulation will by definition be
incomplete and not capture all possible interleavings, even for the
tested programs."  This bench quantifies that: the formal explorer
finds the V-scale bug deterministically from one run, while
random-schedule simulation needs a variable (sometimes large) number of
schedules depending on the seed — and outcome-only testing (watching
for the forbidden result, without the generated assertions) needs far
more still.
"""

import random

from conftest import save_table

from repro import RTLCheck, get_test
from repro.rtl import Simulator
from repro.verifier import simulate_check
from repro.vscale import MultiVScale


def _outcome_only_detection(compiled, seed, max_schedules=4000):
    """Schedules until the raw forbidden outcome (r1=1, r2=0) shows up,
    with no assertions involved — black-box outcome testing."""
    rng = random.Random(seed)
    for index in range(max_schedules):
        soc = MultiVScale(compiled, "buggy")
        sim = Simulator(soc)
        for _ in range(60):
            sim.step({"arb_select": rng.randrange(4)})
            if soc.drained():
                break
        if soc.drained() and soc.register_results() == {"r1": 1, "r2": 0}:
            return index + 1
    return None


def test_simulation_vs_formal(benchmark, results_dir):
    rtlcheck = RTLCheck()
    generated = rtlcheck.generate(get_test("mp"))

    def campaign():
        formal = rtlcheck.verify_test(get_test("mp"), "buggy")
        assertion_counts = []
        outcome_counts = []
        for seed in range(8):
            report = simulate_check(
                MultiVScale(generated.compiled, "buggy"),
                generated.assumptions,
                generated.assertions,
                num_schedules=4000,
                seed=seed,
            )
            assertion_counts.append(
                None
                if report.first_violation_schedule is None
                else report.first_violation_schedule + 1
            )
            outcome_counts.append(_outcome_only_detection(generated.compiled, seed))
        return formal, assertion_counts, outcome_counts

    formal, assertion_counts, outcome_counts = benchmark.pedantic(
        campaign, rounds=1, iterations=1
    )
    assert formal.bug_found

    def fmt(counts):
        return ", ".join("miss" if c is None else str(c) for c in counts)

    found_assert = [c for c in assertion_counts if c is not None]
    found_outcome = [c for c in outcome_counts if c is not None]
    lines = [
        "Finding the V-scale bug: formal vs dynamic (mp, buggy memory)",
        "",
        "formal explorer:       deterministic counterexample "
        f"({formal.counterexamples[0].ground_truth.transitions} transitions)",
        f"simulation+assertions: schedules to first violation over 8 seeds:",
        f"                       [{fmt(assertion_counts)}]",
        f"outcome-only testing:  schedules to observe r1=1,r2=0 over 8 seeds:",
        f"                       [{fmt(outcome_counts)}]",
        "",
        "Dynamic checking is luck-dependent (seed-to-seed spread above),",
        "and a passing campaign proves nothing; only the formal search is",
        "complete — the paper's motivation (§1).",
    ]
    save_table(results_dir, "simulation_vs_formal.txt", "\n".join(lines))

    # Dynamic checks find the bug eventually on these seeds, but with
    # high seed-to-seed variance; the formal result is deterministic.
    assert found_assert
    assert max(found_assert) > 5 * min(found_assert)
