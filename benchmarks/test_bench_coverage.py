"""Benchmark: coverage-guided fuzzing vs blind, and collection cost.

Two acceptance bars for the microarchitectural coverage subsystem:

* **guidance pays**: with equal seed and budget on the Multi-V-scale
  verifier oracle, the coverage-guided scheduler reaches at least 25%
  more unique reach-graph transitions than the blind ``(seed, index)``
  stream — the corpus-mutation loop must actually buy exploration, not
  just reshuffle it;
* **collection is cheap**: verifying the mp/sb/lb subset with coverage
  maps on stays within 3% of the plain run (the graph walk is one pass
  per test and signatures hash packed slot vectors, both linear in
  state count).

Min-of-repeats strips scheduler noise on the overhead side; the A/B
side is deterministic in ``(seed, budget)`` by construction.
"""

import time

from conftest import save_table

from repro import RTLCheck, get_test
from repro.difftest import FuzzConfig, run_fuzz
from repro.obs.coverage import CoverageMap

GUIDED_GAIN_FLOOR = 1.25
OVERHEAD_CEILING = 0.03
SEED = 0
BUDGET = 24
SUBSET = ("mp", "sb", "lb")
REPEATS = 3


def _campaign(guided: bool):
    result = run_fuzz(
        FuzzConfig(
            seed=SEED,
            budget=BUDGET,
            oracles=("verifier",),
            shrink=False,
            coverage=True,
            guided=guided,
            jobs=4,
        )
    )
    return CoverageMap.from_state(result.coverage)


def test_guided_beats_blind(results_dir):
    blind = _campaign(guided=False)
    guided = _campaign(guided=True)
    ratio = guided.unique("transition") / blind.unique("transition")

    lines = [
        f"Coverage-guided vs blind fuzzing: seed={SEED} budget={BUDGET}, "
        f"verifier oracle, Multi-V-scale fixed memory",
        "",
        f"{'scheduler':10s} {'states':>8s} {'transitions':>12s} "
        f"{'total unique':>13s}",
    ]
    for name, cov in (("blind", blind), ("guided", guided)):
        lines.append(
            f"{name:10s} {cov.unique('state'):>8d} "
            f"{cov.unique('transition'):>12d} {cov.total_unique():>13d}"
        )
    lines += [
        "",
        f"transition gain: {ratio:.2f}x (floor: {GUIDED_GAIN_FLOOR:.2f}x)",
        "",
        "Equal budget and seed; the guided run spends corpus energy",
        "mutating tests whose runs discovered novel reach-graph keys,",
        "so the extra transitions are bought by scheduling alone.",
    ]
    save_table(results_dir, "coverage.txt", "\n".join(lines) + "\n")

    assert ratio >= GUIDED_GAIN_FLOOR, (
        f"guided/blind transition ratio {ratio:.2f} below "
        f"{GUIDED_GAIN_FLOOR:.2f} "
        f"({guided.unique('transition')} vs {blind.unique('transition')})"
    )


def _best_wall(coverage: bool, tests) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        rtlcheck = RTLCheck(coverage=coverage)
        start = time.perf_counter()
        rtlcheck.verify_suite(tests, memory_variant="fixed")
        best = min(best, time.perf_counter() - start)
    return best


def test_coverage_overhead(results_dir):
    tests = [get_test(name) for name in SUBSET]
    _best_wall(False, tests)  # warm caches before either measurement
    plain_seconds = _best_wall(False, tests)
    covered_seconds = _best_wall(True, tests)
    overhead = (covered_seconds - plain_seconds) / plain_seconds

    lines = [
        f"Coverage collection overhead: {len(SUBSET)}-test subset "
        f"({', '.join(SUBSET)}), best of {REPEATS}",
        "",
        f"{'collection':12s} {'wall':>9s}",
        f"{'off':12s} {plain_seconds:>8.3f}s",
        f"{'on':12s} {covered_seconds:>8.3f}s",
        "",
        f"overhead: {overhead:+.1%} (ceiling: {OVERHEAD_CEILING:.0%})",
        "",
        "Collection rides the existing per-test flush point: one walk",
        "over the shared reach graph, hashing packed slot vectors, plus",
        "constant-size shape/assumption keys.",
    ]
    save_table(results_dir, "coverage_overhead.txt", "\n".join(lines) + "\n")

    assert overhead < OVERHEAD_CEILING, (
        f"coverage overhead {overhead:.1%} exceeds {OVERHEAD_CEILING:.0%} "
        f"({covered_seconds:.3f}s vs {plain_seconds:.3f}s)"
    )
