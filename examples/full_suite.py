#!/usr/bin/env python3
"""Verify the full 56-test suite against Multi-V-scale (paper §7.2).

Runs RTLCheck on every litmus test of the paper's evaluation under the
chosen engine configuration and prints a per-test report: how each test
was discharged (unreachable covering trace vs proof phase), how many
properties were fully proven, and the modeled runtime.

Run:  python examples/full_suite.py [Hybrid|Full_Proof] [buggy|fixed]
(defaults: Full_Proof, fixed; the buggy run shows which tests expose
the store-dropping bug)
"""

import sys
import time

from repro import CONFIGS, RTLCheck, paper_suite


def main():
    config = CONFIGS[sys.argv[1] if len(sys.argv) > 1 else "Full_Proof"]
    variant = sys.argv[2] if len(sys.argv) > 2 else "fixed"
    rtlcheck = RTLCheck(config=config)

    print(f"Configuration: {config.name}  |  memory: {variant}")
    print(f"{'test':13s} {'phase':18s} {'proven':>9s} {'bounded':>8s} "
          f"{'modeled':>8s} {'wall':>7s}")
    start = time.time()
    bugs = []
    total = proven = bounded = 0
    for test in paper_suite():
        result = rtlcheck.verify_test(test, memory_variant=variant)
        if result.bug_found:
            phase = "COUNTEREXAMPLE"
            bugs.append(test.name)
        elif result.verified_by_cover:
            phase = "cover-unreachable"
        else:
            phase = "proof phase"
        n = len(result.properties)
        total += n
        proven += result.proven_count
        bounded += result.bounded_count
        proven_text = f"{result.proven_count}/{n}" if n else "-"
        print(
            f"{test.name:13s} {phase:18s} {proven_text:>9s} "
            f"{result.bounded_count:>8d} {result.modeled_hours:>7.2f}h "
            f"{result.wall_seconds:>6.2f}s"
        )
    print()
    if bugs:
        print(f"Counterexamples on {len(bugs)} tests: {', '.join(bugs)}")
    if total:
        print(f"Properties: {total}, fully proven {proven} "
              f"({100 * proven / total:.0f}%), bounded {bounded}")
    print(f"Total wall time: {time.time() - start:.0f} s")


if __name__ == "__main__":
    main()
