#!/usr/bin/env python3
"""Quickstart: run RTLCheck end-to-end on the mp litmus test.

This reproduces the paper's headline experiment in miniature:

1. verify mp against the *buggy* Multi-V-scale (the shipped V-scale
   memory) — RTLCheck reports a counterexample for a Read_Values
   property, exposing the store-dropping bug of §7.1;
2. verify mp against the *fixed* memory — the final-value assumption is
   unreachable, verifying the test in modeled minutes (§4.1).

Run:  python examples/quickstart.py
"""

from repro import RTLCheck, get_test


def main():
    rtlcheck = RTLCheck()
    mp = get_test("mp")
    print(mp.pretty())
    print()

    print("=== Verifying mp against the shipped (buggy) V-scale memory ===")
    buggy = rtlcheck.verify_test(mp, memory_variant="buggy")
    print(buggy.summary())
    for prop in buggy.counterexamples:
        cex = prop.counterexample
        print(f"  property {prop.name}: counterexample of {len(cex)} cycles")
    print()

    print("=== Verifying mp against the fixed memory ===")
    fixed = rtlcheck.verify_test(mp, memory_variant="fixed")
    print(fixed.summary())
    print(f"  generation took {fixed.generation_seconds * 1000:.0f} ms "
          f"({len(fixed.assumptions)} assumptions, {len(fixed.assertions)} assertions)")
    print()

    print("=== Forcing the full proof phase (no covering-trace shortcut) ===")
    full = rtlcheck.verify_test(mp, memory_variant="fixed", skip_cover_shortcut=True)
    print(full.summary())
    for prop in full.properties[:5]:
        print(f"  {prop.name}: {prop.status}")
    print(f"  ... ({len(full.properties)} properties total)")


if __name__ == "__main__":
    main()
