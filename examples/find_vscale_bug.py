#!/usr/bin/env python3
"""Reproduce the V-scale store-dropping bug and render Figure 12.

The shipped V-scale memory stages store data in a single-entry ``wdata``
buffer and only pushes it to the array when *another* store initiates a
transaction.  Two stores in successive cycles therefore drop the first
(paper §7.1).  RTLCheck's Read_Values assertion for mp catches this as a
counterexample; this script replays the counterexample trace as an ASCII
timing diagram like the paper's Figure 12, then shows the same schedule
behaving correctly on the fixed memory.

Run:  python examples/find_vscale_bug.py
"""

from repro import RTLCheck, get_test
from repro.litmus import compile_test
from repro.rtl import Simulator, render_timing_diagram
from repro.vscale import MultiVScale


FIGURE12_SIGNALS = [
    "core[0].PC_DX",
    "core[0].PC_WB",
    "core[1].PC_DX",
    "core[1].PC_WB",
    "core[0].store_data_WB",
    "core[1].load_data_WB",
    "mem.wdata",
    "mem.wvalid",
    "mem[40]",  # the x slot
    "mem[41]",  # the y slot
    "arbiter.cur_core",
    "arbiter.prev_core",
]


def pc_formatter(compiled):
    """Decode a PC register value into its litmus instruction."""
    from repro.vscale.params import core_base_pc

    by_pc = {}
    for op in compiled.ops:
        by_pc[core_base_pc(op.core) + op.pc] = f"i{op.uid}"

    def fmt(value):
        if value == 0:
            return ""
        return by_pc.get(value, f"pc={value}")

    return fmt


def main():
    rtlcheck = RTLCheck()
    mp = get_test("mp")
    compiled = compile_test(mp)

    print("Hunting for the bug: verifying mp against the buggy memory...")
    result = rtlcheck.verify_test(mp, memory_variant="buggy")
    assert result.bug_found, "expected a counterexample!"
    failing = result.counterexamples[0]
    print(f"Counterexample found for property {failing.name}\n")

    frames = [frame for _inputs, frame in failing.counterexample]
    fmt = pc_formatter(compiled)
    formatters = {name: fmt for name in FIGURE12_SIGNALS if "PC_" in name}
    print("Counterexample trace (compare with paper Figure 12):")
    print(render_timing_diagram(frames, FIGURE12_SIGNALS, formatters=formatters))
    print()

    schedule = [inputs["arb_select"] for inputs, _frame in failing.counterexample]
    print(f"Arbiter schedule of the counterexample: {schedule}")
    print("The memory pushes the stale wdata into x's slot when the second")
    print("store starts, so the store of x=1 is dropped and the load of x")
    print("returns 0 even though the load of y already returned 1.\n")

    print("Replaying the same schedule on the FIXED memory:")
    soc = MultiVScale(compiled, "fixed")
    sim = Simulator(soc)
    iterator = iter(schedule + [0] * 40)
    for _ in range(60):
        sim.step({"arb_select": next(iterator, 0)})
        if soc.drained():
            break
    print(render_timing_diagram(sim.trace[: len(frames) + 2], FIGURE12_SIGNALS[:10], formatters=formatters))
    print(f"\nFixed-memory results: {soc.register_results()} "
          f"(memory: {soc.memory_results()}) — SC-consistent.")


if __name__ == "__main__":
    main()
