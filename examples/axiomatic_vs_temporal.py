#!/usr/bin/env python3
"""The semantic gap: axiomatic vs temporal verification (paper Figure 4).

Verifies mp's forbidden outcome on the abstract machine ``atomic_mach``
both ways:

* axiomatically — enumerate whole executions, strike out those with a
  different outcome and those violating acyclic(po ∪ rf ∪ co ∪ fr);
* temporally — grow the execution tree step by step, where outcome
  assumptions can only prune a branch at the step the offending load
  actually returns its value (no lookahead, §3.1).

Both agree the outcome is unobservable, but the temporal verifier must
visit partial executions the axiomatic one never considers — exactly the
mismatch RTLCheck's outcome-aware assertion generation has to bridge.

Run:  python examples/axiomatic_vs_temporal.py [test-name]
"""

import sys

from repro.atomic import verify_axiomatic, verify_temporal
from repro.litmus import get_test


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "mp"
    test = get_test(name)
    print(test.pretty())
    print()

    ax = verify_axiomatic(test)
    print("Axiomatic verification (Figure 4a):")
    print(f"  candidate executions:        {ax.executions_total}")
    print(f"  excluded by outcome filter:  {ax.excluded_by_outcome}  (dashed red strikes)")
    print(f"  excluded by the SC axiom:    {ax.excluded_by_axiom}  (blue strikes)")
    print(f"  surviving witnesses:         {ax.witnesses}")
    print(f"  => outcome {'OBSERVABLE' if ax.observable else 'unobservable'}")
    print()

    tm = verify_temporal(test)
    print("Temporal verification (Figure 4b):")
    print(f"  steps explored:              {tm.steps_explored}")
    print(f"  branches pruned when an outcome assumption fired: {tm.partial_executions_pruned}")
    print(f"  full executions reached:     {tm.full_executions}")
    print(f"  witnesses:                   {tm.witnesses}")
    print(f"  => outcome {'OBSERVABLE' if tm.observable else 'unobservable'}")
    print()

    assert ax.observable == tm.observable
    print("Both verifiers agree — but note the temporal verifier explored")
    print("partial executions that the axiomatic verifier could exclude up")
    print("front using omniscience about the outcome (paper §3.2).")


if __name__ == "__main__":
    main()
