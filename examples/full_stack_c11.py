#!/usr/bin/env python3
"""Full-stack MCM verification: C11 → compiler mapping → ISA → RTL.

The paper's contribution list closes with: "With the link from
microarchitecture to RTL covered by RTLCheck, the Check suite can now
support MCM verification from HLLs (C11, etc.) through compiler
mappings, the OS, ISA, and microarchitecture, all the way down to RTL."

This example runs that pipeline three ways on Dekker's store-buffering
idiom written with C11 seq_cst atomics:

1. correct x86-style mapping on the TSO design — sound;
2. a broken mapping that drops the seq_cst fences — the hardware still
   satisfies its own µspec axioms, yet the compiled program exhibits an
   outcome the source forbids: a *compiler mapping bug*, the class of
   defect TriCheck (and the trailing-sync C11→Power episode the paper
   cites) made famous;
3. the same source on the SC design — no fences needed at all.

Run:  python examples/full_stack_c11.py
"""

from repro.hll import (
    RELAXED,
    SC_MAPPING,
    TSO_MAPPING,
    TSO_MAPPING_BROKEN,
    c11_sb,
    check_full_stack,
    compile_hll,
)


def main():
    source = c11_sb()
    print(source.pretty())
    print()

    print("Compiled with the correct TSO mapping:")
    isa = compile_hll(source, TSO_MAPPING)
    for cid, thread in enumerate(isa.threads):
        print(f"  core {cid}: " + "; ".join(str(op) for op in thread))
    print()

    for mapping, platform in (
        (TSO_MAPPING, "tso"),
        (TSO_MAPPING_BROKEN, "tso"),
        (SC_MAPPING, "sc"),
    ):
        result = check_full_stack(source, mapping, platform)
        print(result.summary())
        print()

    print("The same broken mapping is harmless for a relaxed source")
    print("(the language already allows the outcome):")
    relaxed = check_full_stack(c11_sb(RELAXED), TSO_MAPPING_BROKEN, "tso")
    print(relaxed.summary())


if __name__ == "__main__":
    main()
