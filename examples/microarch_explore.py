#!/usr/bin/env python3
"""Check-style microarchitectural verification and µhb graph rendering.

Reproduces the paper's Figures 2/3: verify mp's forbidden outcome at the
microarchitecture level by exhaustively enumerating µhb graphs from the
Multi-V-scale µspec axioms, then export the Figure-3a-style cyclic graph
as Graphviz DOT (written to ``mp_uhb.dot``).

Run:  python examples/microarch_explore.py [test-name]
"""

import sys
from pathlib import Path

from repro.litmus import compile_test, get_test
from repro.memodel import sc_allowed
from repro.uhb import (
    cyclic_witness_graph,
    instruction_labels,
    microarch_observable,
)
from repro.uspec import multi_vscale_model


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "mp"
    test = get_test(name)
    model = multi_vscale_model()
    compiled = compile_test(test)

    print(test.pretty())
    print()
    print(f"SC oracle says the outcome is "
          f"{'ALLOWED' if sc_allowed(test) else 'FORBIDDEN'} under SC.\n")

    result = microarch_observable(model, test, compiled=compiled, find_all=True)
    print(result.summary())
    print(f"  leaves enumerated: {result.solve.leaves_enumerated}")
    print(f"  consistent graphs: {result.solve.consistent_graphs}")
    print(f"  acyclic graphs:    {result.solve.acyclic_graphs}")
    print()

    if result.observable:
        graph = result.witness
        print("Acyclic witness graph (the outcome is microarchitecturally")
        print("observable); happens-before order of its nodes:")
        for node in graph.topological_order():
            uid, stage = node
            print(f"  i{uid} @ {stage}")
        dot = graph.to_dot(name=name.replace("+", "_"), instr_names=instruction_labels(compiled))
    else:
        graph = cyclic_witness_graph(model, test, compiled=compiled)
        cycle = graph.find_cycle()
        print("Every consistent µhb graph is cyclic (the outcome is correctly")
        print("unobservable).  One cycle, as in paper Figure 3a:")
        for node in cycle:
            uid, stage = node
            print(f"  i{uid} @ {stage}")
        dot = graph.to_dot(name=name.replace("+", "_"), instr_names=instruction_labels(compiled))

    out = Path(f"{name.replace('+', '_')}_uhb.dot")
    out.write_text(dot)
    print(f"\nGraph written to {out} (render with: dot -Tpdf {out})")


if __name__ == "__main__":
    main()
