#!/usr/bin/env python3
"""RTLCheck on a weaker memory model: the x86-TSO Multi-V-scale.

The paper's method supports arbitrary ISA-level MCMs; this example runs
it end to end on the store-buffer variant of Multi-V-scale:

1. show the store-buffering relaxation live: sb's SC-forbidden outcome
   occurs on the TSO design;
2. verify sb with RTLCheck against the TSO µspec model — the outcome is
   reachable (the covering trace exists) yet every axiom holds;
3. seed a LIFO-drain bug in the store buffer and watch the
   Store_Buffer_FIFO assertion produce a counterexample.

Run:  python examples/tso_machine.py
"""

import random

from repro import RTLCheck, get_test
from repro.litmus import compile_test
from repro.rtl import Simulator, render_timing_diagram
from repro.vscale import MultiVScaleTSO


def show_relaxation():
    sb = get_test("sb")
    print(sb.pretty())
    compiled = compile_test(sb)
    rng = random.Random(7)
    for _ in range(500):
        soc = MultiVScaleTSO(compiled)
        sim = Simulator(soc)
        schedule = [rng.randrange(4) for _ in range(150)]
        iterator = iter(schedule)
        for _ in range(150):
            sim.step({"arb_select": next(iterator, 0)})
            if soc.drained():
                break
        if soc.register_results() == {"r1": 0, "r2": 0}:
            print("\nFound the store-buffering relaxation: r1=0, r2=0")
            print("(forbidden under SC, allowed under x86-TSO)\n")
            signals = [
                "core[0].PC_WB", "core[1].PC_WB",
                "core[0].sb_count", "core[1].sb_count",
                "core[0].commit_valid", "core[1].commit_valid",
                "core[0].load_data_WB", "core[1].load_data_WB",
            ]
            print(render_timing_diagram(sim.trace[:12], signals))
            return
    raise AssertionError("relaxation not observed")


def main():
    show_relaxation()

    rtlcheck = RTLCheck.for_tso()
    print("\n=== Verifying sb against the TSO µspec model ===")
    result = rtlcheck.verify_test(get_test("sb"))
    print(result.summary())
    print("  the outcome under test was reachable "
          f"(covering trace exists: "
          f"{'final_values' in result.cover.fired_assumptions}), so the "
          "proof phase ran — and every TSO axiom held.")

    print("\n=== Seeding a LIFO-drain store-buffer bug ===")
    buggy = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
    print(buggy.summary())
    for prop in buggy.counterexamples[:3]:
        print(f"  failing: {prop.name}")


if __name__ == "__main__":
    main()
