#!/usr/bin/env python3
"""Pipelined-memory timing diagrams (paper Figures 6 and 11).

Drives the fixed Multi-V-scale through mp with the arbiter schedule of
Figure 6 — core 0 owns the port first, core 1 follows — and renders the
pipelined address-phase/data-phase overlap: while one instruction is in
WB exchanging data with memory, the next is in DX sending its address.

Run:  python examples/waveforms.py
"""

from repro.litmus import compile_test, get_test
from repro.rtl import Simulator, render_timing_diagram
from repro.vscale import MultiVScale
from repro.vscale.params import core_base_pc


def main():
    mp = get_test("mp")
    compiled = compile_test(mp)
    soc = MultiVScale(compiled, "fixed")
    sim = Simulator(soc)

    # Figure 6's scenario: grant core 0 through its two stores, then
    # core 1 through its two loads.
    schedule = [0, 0, 0, 1, 1, 1, 0, 0]
    for select in schedule + [0] * 10:
        sim.step({"arb_select": select})
        if soc.drained():
            break

    by_pc = {
        core_base_pc(op.core) + op.pc: f"i{op.uid}" for op in compiled.ops
    }
    fmt = lambda v: by_pc.get(v, "") if v else ""

    signals = [
        "core[0].PC_DX", "core[0].PC_WB",
        "core[1].PC_DX", "core[1].PC_WB",
        "core[0].store_data_WB",
        "core[1].load_data_WB",
        "arbiter.cur_core", "arbiter.prev_core",
        "mem[40]", "mem[41]",
    ]
    formatters = {name: fmt for name in signals if "PC_" in name}
    print("mp on Multi-V-scale (fixed memory), Figure 6-style schedule:")
    print(render_timing_diagram(sim.trace, signals, formatters=formatters))
    print()
    print("Address phase (DX) and data phase (WB) overlap: e.g. i2 sends")
    print("its address while i1 exchanges data — the pipelined memory of")
    print("Figure 11.  One core accesses memory per cycle via the arbiter.")
    print()
    print(f"Final registers: {soc.register_results()}")
    print(f"Final memory:    {soc.memory_results()}")


if __name__ == "__main__":
    main()
