#!/usr/bin/env python3
"""Emit the generated SystemVerilog assertions/assumptions to .sv files.

This is RTLCheck's primary artifact (paper Figures 8 and 10): one file
per litmus test, holding the SV assumptions that constrain the verifier
to that test's executions and the SV assertions that check every µspec
axiom.  The files land in ``./generated_sva/``.

Run:  python examples/generate_sva.py [test-name ...]
"""

import sys
from pathlib import Path

from repro import RTLCheck, get_test, paper_suite
from repro.vscale import emit_verification_bundle


def main():
    names = sys.argv[1:]
    tests = [get_test(n) for n in names] if names else paper_suite()[:8]
    out_dir = Path("generated_sva")
    out_dir.mkdir(exist_ok=True)

    rtlcheck = RTLCheck()
    total_props = 0.0
    for test in tests:
        generated = rtlcheck.generate(test)
        path = out_dir / f"{test.name.replace('+', '_')}.sv"
        # The complete per-test artifact: design + properties (paper §6).
        path.write_text(
            emit_verification_bundle(generated.compiled, generated.sva_text)
        )
        total_props += generated.generation_seconds
        print(
            f"{test.name:12s} -> {path}  "
            f"({len(generated.assumptions)} assumptions, "
            f"{len(generated.assertions)} assertions, "
            f"{generated.generation_seconds * 1000:.0f} ms)"
        )

    print(f"\nTotal generation time: {total_props:.2f} s "
          f"(the paper reports 'just seconds per test')")

    sample = rtlcheck.generate(get_test("mp"))
    print("\nSample assumption (compare with paper Figure 8):")
    print("  " + next(d for d in sample.assumptions if d.name.startswith("load_value")).emit())
    print("\nSample assertion (compare with paper Figure 10):")
    read_values = next(d for d in sample.assertions if "Read_Values" in d.name)
    print("  " + read_values.emit())


if __name__ == "__main__":
    main()
